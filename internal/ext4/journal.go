package ext4

import (
	"encoding/binary"
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Metadata journaling (ordered mode, like the paper's ext4 setup):
// dirty metadata blocks are logged to the journal region with a
// commit record, then checkpointed to their home locations, then the
// journal is marked clean. Data blocks are never journaled. Mount
// replays any committed-but-not-checkpointed transaction; an
// uncommitted transaction is discarded, yielding metadata crash
// consistency without data consistency (paper §4.4).

// journal header block layout: magic(u32) pad(u32) seq(u64) n(u32),
// then n u64 target block numbers starting at byte 24.
const maxJournalTargets = (BlockSize - 24) / 8

// Commit journals all dirty metadata, checkpoints it, and applies
// deferred block frees. It is the FS's sync point (fsync, close,
// unmount).
func (fs *FS) Commit(p *sim.Proc) error {
	var commitStart sim.Time
	if p != nil {
		commitStart = p.Now()
	}
	// The caller (fsync path) has already drained and flushed the
	// device, so blocks freed since the last commit can now be
	// released for reallocation and their cleared bits written as
	// part of this same transaction (paper §3.6).
	fs.applyPendingFree()

	staging := make(map[int64][]byte)
	order := make([]int64, 0, 16) // deterministic write order

	stage := func(blk int64) []byte {
		if img, ok := staging[blk]; ok {
			return img
		}
		img := make([]byte, BlockSize)
		staging[blk] = img
		order = append(order, blk)
		return img
	}

	// Stage dirty inodes (and their extent chains) first: chain block
	// allocation may dirty more bitmap blocks.
	inodeBlocks := make(map[int64]bool)
	for ino := range fs.dirtyInodes {
		in, ok := fs.inodes[ino]
		if !ok {
			continue
		}
		if err := fs.stageExtentChain(in, stage); err != nil {
			return err
		}
		blk, _ := inodeLoc(&fs.sb, ino)
		inodeBlocks[blk] = true
	}
	// Inode table blocks hold 16 inodes each: start from the on-disk
	// image and patch every dirty inode in the block.
	for blk := range inodeBlocks {
		img := stage(blk)
		if err := fs.bio.ReadBlocks(p, blk, 1, img); err != nil {
			return err
		}
	}
	for ino := range fs.dirtyInodes {
		in, ok := fs.inodes[ino]
		if !ok {
			continue
		}
		blk, off := inodeLoc(&fs.sb, ino)
		in.marshalInto(staging[blk][off:])
	}

	// Stage dirty bitmap blocks (including ones dirtied above).
	for idx := range fs.dirtyBitmap {
		img := stage(fs.sb.BitmapStart + idx)
		copy(img, fs.bitmap[idx*BlockSize:(idx+1)*BlockSize])
	}

	if len(order) == 0 {
		return nil
	}

	// Write transactions in chunks bounded by the journal region.
	chunk := int(fs.sb.JournalBlocks) - 2
	if chunk > maxJournalTargets {
		chunk = maxJournalTargets
	}
	for start := 0; start < len(order); start += chunk {
		end := start + chunk
		if end > len(order) {
			end = len(order)
		}
		if err := fs.writeTransaction(p, order[start:end], staging); err != nil {
			return err
		}
	}

	// Drop freed inodes from the cache now that zeroed images are on
	// disk.
	for ino := range fs.dirtyInodes {
		if in, ok := fs.inodes[ino]; ok && in.Mode == 0 {
			delete(fs.inodes, ino)
		}
	}
	fs.dirtyInodes = make(map[uint32]bool)
	fs.dirtyBitmap = make(map[int64]bool)
	fs.Commits++
	fs.mCommits.Inc()
	if p != nil {
		fs.tr.Emit(p, "journal-commit", "ext4", commitStart, p.Now()-commitStart)
	}
	return nil
}

// stageExtentChain reconciles the overflow chain blocks backing the
// inode's extent list and stages their images.
func (fs *FS) stageExtentChain(in *Inode, stage func(int64) []byte) error {
	needed := chainCount(len(in.Extents))
	for len(in.chainBlocks) < needed {
		blk, err := fs.allocMetaBlock()
		if err != nil {
			return err
		}
		in.chainBlocks = append(in.chainBlocks, uint32(blk))
	}
	for len(in.chainBlocks) > needed {
		last := in.chainBlocks[len(in.chainBlocks)-1]
		in.chainBlocks = in.chainBlocks[:len(in.chainBlocks)-1]
		fs.deferFree([]Extent{{Start: last, Count: 1}})
	}
	if needed == 0 {
		in.extChain = 0
		return nil
	}
	in.extChain = in.chainBlocks[0]
	le := binary.LittleEndian
	rest := in.Extents[InlineExtents:]
	for i := 0; i < needed; i++ {
		img := stage(int64(in.chainBlocks[i]))
		for j := range img {
			img[j] = 0
		}
		if i+1 < needed {
			le.PutUint32(img[0:], in.chainBlocks[i+1])
		}
		n := len(rest) - i*extentsPerChainBlock
		if n > extentsPerChainBlock {
			n = extentsPerChainBlock
		}
		le.PutUint32(img[4:], uint32(n))
		for j := 0; j < n; j++ {
			e := rest[i*extentsPerChainBlock+j]
			off := 8 + j*12
			le.PutUint32(img[off:], e.FileBlock)
			le.PutUint32(img[off+4:], e.Start)
			le.PutUint32(img[off+8:], e.Count)
		}
	}
	return nil
}

// crashAt evaluates one injected journal crash point. A firing site
// freezes the file system exactly as a power loss at that stage
// would: the error aborts the commit, and recovery happens at the
// next mount from whatever subset of writes reached the medium.
func (fs *FS) crashAt(site string) error {
	if fs.inj.Fire(site) {
		return fmt.Errorf("%s: %w", site, ErrCrashed)
	}
	return nil
}

// writeTransaction logs one set of blocks, commits, checkpoints, and
// cleans the journal.
func (fs *FS) writeTransaction(p *sim.Proc, targets []int64, staging map[int64][]byte) error {
	if err := fs.crashAt(faults.SiteCrashPreJournal); err != nil {
		return err
	}
	fs.journalSeq++
	le := binary.LittleEndian

	header := make([]byte, BlockSize)
	le.PutUint32(header[0:], journalMagic)
	le.PutUint64(header[8:], fs.journalSeq)
	le.PutUint32(header[16:], uint32(len(targets)))
	for i, t := range targets {
		le.PutUint64(header[24+i*8:], uint64(t))
	}
	if err := fs.bio.WriteBlocks(p, fs.sb.JournalStart, 1, header); err != nil {
		return err
	}
	for i, t := range targets {
		if err := fs.bio.WriteBlocks(p, fs.sb.JournalStart+1+int64(i), 1, staging[t]); err != nil {
			return err
		}
	}
	if err := fs.crashAt(faults.SiteCrashPreCommit); err != nil {
		return err
	}
	commit := make([]byte, BlockSize)
	le.PutUint32(commit[0:], commitMagic)
	le.PutUint64(commit[8:], fs.journalSeq)
	if err := fs.bio.WriteBlocks(p, fs.sb.JournalStart+1+int64(len(targets)), 1, commit); err != nil {
		return err
	}
	// Barrier: journal must be durable before home writes begin.
	if err := fs.bio.Flush(p); err != nil {
		return err
	}
	if err := fs.crashAt(faults.SiteCrashPostCommit); err != nil {
		return err
	}

	for _, t := range targets {
		if err := fs.bio.WriteBlocks(p, t, 1, staging[t]); err != nil {
			return err
		}
	}
	if err := fs.bio.Flush(p); err != nil {
		return err
	}
	if err := fs.crashAt(faults.SiteCrashPostCheckpoint); err != nil {
		return err
	}

	clean := make([]byte, BlockSize)
	return fs.bio.WriteBlocks(p, fs.sb.JournalStart, 1, clean)
}

// replayJournal applies a committed-but-unchecked transaction found
// at mount time.
func (fs *FS) replayJournal(p *sim.Proc) error {
	le := binary.LittleEndian
	header := make([]byte, BlockSize)
	if err := fs.bio.ReadBlocks(p, fs.sb.JournalStart, 1, header); err != nil {
		return err
	}
	if le.Uint32(header[0:]) != journalMagic {
		return nil // clean journal
	}
	seq := le.Uint64(header[8:])
	n := int64(le.Uint32(header[16:]))
	if n <= 0 || n > int64(maxJournalTargets) || 1+n >= fs.sb.JournalBlocks {
		return nil // implausible header: treat as torn, discard
	}
	commit := make([]byte, BlockSize)
	if err := fs.bio.ReadBlocks(p, fs.sb.JournalStart+1+n, 1, commit); err != nil {
		return err
	}
	if le.Uint32(commit[0:]) != commitMagic || le.Uint64(commit[8:]) != seq {
		// Crash happened mid-log: the transaction never committed,
		// so the home copies are the consistent state.
		clean := make([]byte, BlockSize)
		return fs.bio.WriteBlocks(p, fs.sb.JournalStart, 1, clean)
	}
	// Replay.
	img := make([]byte, BlockSize)
	for i := int64(0); i < n; i++ {
		target := int64(le.Uint64(header[24+i*8:]))
		if err := fs.bio.ReadBlocks(p, fs.sb.JournalStart+1+i, 1, img); err != nil {
			return err
		}
		if err := fs.bio.WriteBlocks(p, target, 1, img); err != nil {
			return err
		}
	}
	if err := fs.bio.Flush(p); err != nil {
		return err
	}
	fs.journalSeq = seq
	clean := make([]byte, BlockSize)
	return fs.bio.WriteBlocks(p, fs.sb.JournalStart, 1, clean)
}
