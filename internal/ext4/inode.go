package ext4

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pagetable"
	"repro/internal/sim"
)

// Extent maps a contiguous run of file blocks to disk blocks.
type Extent struct {
	FileBlock uint32 // first file-relative block
	Start     uint32 // first disk block
	Count     uint32 // run length in blocks
}

// Inode is the in-memory inode, mirroring the on-disk layout plus the
// runtime state the kernel needs (cached file table, open tracking).
type Inode struct {
	Ino uint32
	// Dev is the owning device's identifier, stamped when the FS
	// materializes the inode (never stored on disk). Inode numbers are
	// per-device — two mounts can both hand out ino 12 — so kernel
	// state keyed by inode must key on (Dev, Ino), not Ino alone.
	Dev   uint8
	Mode  uint16
	UID   uint16
	GID   uint16
	Links uint16
	Size  int64
	Atime sim.Time
	Mtime sim.Time
	Ctime sim.Time

	// Extents is the full, sorted extent list. On disk the first
	// InlineExtents live in the inode; the rest spill into chained
	// extent blocks referenced by extChain.
	Extents     []Extent
	extChain    uint32   // on-disk overflow chain head (0 = none)
	chainBlocks []uint32 // blocks currently backing the chain

	// ft is the cached, shared file table (pre-populated FTE
	// fragments) living with the cached inode (paper §4.1). nil until
	// a cold fmap builds it.
	ft *pagetable.FileTable

	// Open-interface tracking used by the kernel for the sharing
	// rules of §4.5.2. Counts of current opens through each interface.
	BypassOpens int
	KernelOpens int
}

// IsDir reports whether the inode is a directory.
func (in *Inode) IsDir() bool { return in.Mode&ModeDir != 0 }

// Perm returns the permission bits.
func (in *Inode) Perm() uint16 { return in.Mode & PermMask }

// Blocks reports the number of blocks needed for Size bytes.
func (in *Inode) Blocks() int64 { return (in.Size + BlockSize - 1) / BlockSize }

// AllocatedBlocks reports the total blocks covered by extents (can
// exceed Blocks() after fallocate).
func (in *Inode) AllocatedBlocks() int64 {
	var n int64
	for _, e := range in.Extents {
		n += int64(e.Count)
	}
	return n
}

// marshalInto writes the inode's on-disk representation (without the
// overflow chain contents) into buf, which must be >= InodeSize.
func (in *Inode) marshalInto(buf []byte) {
	le := binary.LittleEndian
	for i := 0; i < InodeSize; i++ {
		buf[i] = 0
	}
	le.PutUint16(buf[0:], in.Mode)
	le.PutUint16(buf[2:], in.UID)
	le.PutUint16(buf[4:], in.GID)
	le.PutUint16(buf[6:], in.Links)
	le.PutUint64(buf[8:], uint64(in.Size))
	le.PutUint64(buf[16:], uint64(in.Atime))
	le.PutUint64(buf[24:], uint64(in.Mtime))
	le.PutUint64(buf[32:], uint64(in.Ctime))
	n := len(in.Extents)
	if n > InlineExtents {
		n = InlineExtents
	}
	le.PutUint16(buf[40:], uint16(n))
	le.PutUint32(buf[44:], in.extChain)
	for i := 0; i < n; i++ {
		off := 48 + i*12
		le.PutUint32(buf[off:], in.Extents[i].FileBlock)
		le.PutUint32(buf[off+4:], in.Extents[i].Start)
		le.PutUint32(buf[off+8:], in.Extents[i].Count)
	}
}

// unmarshalInode parses the fixed part of an inode.
func unmarshalInode(ino uint32, buf []byte) *Inode {
	le := binary.LittleEndian
	in := &Inode{
		Ino:      ino,
		Mode:     le.Uint16(buf[0:]),
		UID:      le.Uint16(buf[2:]),
		GID:      le.Uint16(buf[4:]),
		Links:    le.Uint16(buf[6:]),
		Size:     int64(le.Uint64(buf[8:])),
		Atime:    sim.Time(le.Uint64(buf[16:])),
		Mtime:    sim.Time(le.Uint64(buf[24:])),
		Ctime:    sim.Time(le.Uint64(buf[32:])),
		extChain: le.Uint32(buf[44:]),
	}
	n := int(le.Uint16(buf[40:]))
	if n > InlineExtents {
		n = InlineExtents
	}
	for i := 0; i < n; i++ {
		off := 48 + i*12
		in.Extents = append(in.Extents, Extent{
			FileBlock: le.Uint32(buf[off:]),
			Start:     le.Uint32(buf[off+4:]),
			Count:     le.Uint32(buf[off+8:]),
		})
	}
	return in
}

// GetInode loads an inode through the cache. The extent overflow
// chain is read from disk on first load — this is what makes a later
// fmap() "cold" vs "warm" (paper §4.1, Table 5).
func (fs *FS) GetInode(p *sim.Proc, ino uint32) (*Inode, error) {
	if ino == 0 || ino > uint32(fs.sb.InodeCount) {
		return nil, fmt.Errorf("%w: inode %d", ErrBadFS, ino)
	}
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	blk, off := inodeLoc(&fs.sb, ino)
	buf := make([]byte, BlockSize)
	if err := fs.bio.ReadBlocks(p, blk, 1, buf); err != nil {
		return nil, err
	}
	in := unmarshalInode(ino, buf[off:off+InodeSize])
	if in.Mode == 0 {
		return nil, ErrNotExist
	}
	if err := fs.loadExtentChain(p, in); err != nil {
		return nil, err
	}
	in.Dev = fs.devID
	fs.inodes[ino] = in
	return in, nil
}

// EvictInode drops an inode (and its cached file table) from the
// cache after writing it back, forcing subsequent access to re-read
// the table from disk. Used by tests and the cold-fmap experiments.
func (fs *FS) EvictInode(p *sim.Proc, ino uint32) error {
	in, ok := fs.inodes[ino]
	if !ok {
		return nil
	}
	if fs.dirtyInodes[ino] {
		if err := fs.Commit(p); err != nil {
			return err
		}
	}
	in.ft = nil
	delete(fs.inodes, ino)
	delete(fs.dirCache, ino)
	return nil
}

// markDirty queues the inode for the next journal commit.
func (fs *FS) markDirty(in *Inode) {
	fs.dirtyInodes[in.Ino] = true
}

// allocInode claims a free inode number.
func (fs *FS) allocInode() (uint32, error) {
	if len(fs.freeInodes) == 0 {
		return 0, ErrNoInodes
	}
	ino := fs.freeInodes[len(fs.freeInodes)-1]
	fs.freeInodes = fs.freeInodes[:len(fs.freeInodes)-1]
	return ino, nil
}

// freeInode releases an inode number and clears its cache entry.
func (fs *FS) freeInode(in *Inode) {
	in.Mode = 0
	in.Extents = nil
	in.extChain = 0
	in.Size = 0
	in.ft = nil
	delete(fs.dirCache, in.Ino)
	fs.markDirty(in)
	fs.freeInodes = append(fs.freeInodes, in.Ino)
	// Keep it cached until commit writes the zeroed image; the cache
	// entry is dropped at commit time.
}
