package ext4

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faults"
)

// Crash-recovery invariant tests: a one-shot injected crash at each
// journal stage aborts a commit mid-flight; remounting the surviving
// storage image must replay (or discard) the interrupted transaction
// so that fsck passes, everything committed before the crash is
// intact, and the interrupted transaction is applied atomically —
// fully visible when the commit record reached the medium, fully
// absent when it did not.

// crashSites maps each crash point to whether the interrupted
// transaction must be visible after recovery.
var crashSites = []struct {
	site      string
	committed bool
}{
	{faults.SiteCrashPreJournal, false},
	{faults.SiteCrashPreCommit, false},
	{faults.SiteCrashPostCommit, true},
	{faults.SiteCrashPostCheckpoint, true},
}

func TestJournalCrashRecovery(t *testing.T) {
	for _, cs := range crashSites {
		cs := cs
		t.Run(cs.site, func(t *testing.T) {
			fs, st := newFS(t)

			// Baseline transaction, fully committed before any fault.
			base, err := fs.Create(nil, "/base", 0o644, Root)
			if err != nil {
				t.Fatal(err)
			}
			baseData := make([]byte, 30000)
			rand.New(rand.NewSource(9)).Read(baseData)
			if _, err := fs.WriteAt(nil, base, 0, baseData); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Mkdir(nil, "/dir", 0o755, Root); err != nil {
				t.Fatal(err)
			}
			if err := fs.Commit(nil); err != nil {
				t.Fatal(err)
			}

			// Arm a one-shot crash at this stage, then attempt a second
			// transaction.
			fs.SetInjector(faults.NewInjector(1, []faults.Rule{{Site: cs.site, Count: 1}}))
			nf, err := fs.Create(nil, "/dir/new", 0o644, Root)
			if err != nil {
				t.Fatal(err)
			}
			newData := make([]byte, 12000)
			rand.New(rand.NewSource(10)).Read(newData)
			if _, err := fs.WriteAt(nil, nf, 0, newData); err != nil {
				t.Fatal(err)
			}
			if err := fs.Commit(nil); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Commit err = %v, want ErrCrashed", err)
			}

			// Power loss: abandon the in-memory state and remount from
			// whatever reached the medium.
			fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
			if err != nil {
				t.Fatalf("remount after %s: %v", cs.site, err)
			}
			if err := fs2.Check(nil); err != nil {
				t.Fatalf("fsck after %s: %v", cs.site, err)
			}

			// The committed baseline must survive every crash point.
			b2, err := fs2.Lookup(nil, "/base", Root)
			if err != nil {
				t.Fatalf("baseline lost after %s: %v", cs.site, err)
			}
			got := make([]byte, len(baseData))
			if _, err := fs2.ReadAt(nil, b2, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, baseData) {
				t.Fatalf("baseline content diverged after %s", cs.site)
			}

			// The interrupted transaction is atomic: all or nothing,
			// depending on whether the commit record hit the medium.
			n2, err := fs2.Lookup(nil, "/dir/new", Root)
			if cs.committed {
				if err != nil {
					t.Fatalf("committed transaction lost after %s: %v", cs.site, err)
				}
				if n2.Size != int64(len(newData)) {
					t.Fatalf("replayed size = %d, want %d", n2.Size, len(newData))
				}
				got := make([]byte, len(newData))
				if _, err := fs2.ReadAt(nil, n2, 0, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, newData) {
					t.Fatalf("replayed content diverged after %s", cs.site)
				}
			} else if !errors.Is(err, ErrNotExist) {
				t.Fatalf("uncommitted transaction leaked after %s: inode=%v err=%v", cs.site, n2, err)
			}

			// The recovered file system must stay fully usable: another
			// mutation + commit + fsck round.
			after, err := fs2.Create(nil, "/after", 0o644, Root)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs2.WriteAt(nil, after, 0, baseData[:5000]); err != nil {
				t.Fatal(err)
			}
			if err := fs2.Commit(nil); err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			if err := fs2.Check(nil); err != nil {
				t.Fatalf("fsck after post-recovery commit: %v", err)
			}
		})
	}
}

// TestJournalCrashEveryCommitStage drives a longer workload where each
// successive commit crashes at a rotating stage, remounting after
// every crash; committed history must never regress.
func TestJournalCrashEveryCommitStage(t *testing.T) {
	fs, st := newFS(t)
	content := map[string][]byte{}
	rng := rand.New(rand.NewSource(11))

	for round := 0; round < 8; round++ {
		cs := crashSites[round%len(crashSites)]
		path := fmt.Sprintf("/f%d", round)
		data := make([]byte, 4096+rng.Intn(20000))
		rng.Read(data)

		in, err := fs.Create(nil, path, 0o644, Root)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(nil, in, 0, data); err != nil {
			t.Fatal(err)
		}
		fs.SetInjector(faults.NewInjector(int64(round), []faults.Rule{{Site: cs.site, Count: 1}}))
		if err := fs.Commit(nil); !errors.Is(err, ErrCrashed) {
			t.Fatalf("round %d: Commit err = %v, want ErrCrashed", round, err)
		}
		if cs.committed {
			content[path] = data
		}

		if fs, err = Mount(nil, &Direct{St: st}, 1, nil); err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		if err := fs.Check(nil); err != nil {
			t.Fatalf("round %d fsck: %v", round, err)
		}
		for p, want := range content {
			in, err := fs.Lookup(nil, p, Root)
			if err != nil {
				t.Fatalf("round %d: committed %s lost: %v", round, p, err)
			}
			got := make([]byte, len(want))
			if _, err := fs.ReadAt(nil, in, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: committed %s diverged", round, p)
			}
		}
	}
}
