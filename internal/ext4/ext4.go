// Package ext4 implements the kernel file system of the BypassD
// reproduction: an extent-based file system in the spirit of ext4
// (without data journaling, matching the paper's configuration, §4).
//
// It has a real on-disk format — superblock, block bitmap, inode
// table with inline extent lists and overflow chains, hierarchical
// directories, and a write-ahead metadata journal with crash
// recovery — and carries the BypassD-specific responsibilities:
//
//   - virtualizing block addresses by building per-inode shared File
//     Table fragments (cached in the VFS inode, paper §4.1);
//   - zeroing newly allocated blocks before exposing them (paper §4.1,
//     §5.3 confidentiality rule);
//   - delaying the reuse of freed blocks until a sync point, closing
//     the revocation/in-flight-I/O race (paper §3.6).
package ext4

import (
	"encoding/binary"
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// On-disk geometry.
const (
	BlockSize       = 4096
	SectorsPerBlock = BlockSize / storage.SectorSize
	InodeSize       = 256
	InodesPerBlock  = BlockSize / InodeSize
	InlineExtents   = 12
	MaxNameLen      = 255
	RootIno         = 1

	superMagic   = 0xBD5F2024
	journalMagic = 0xBD5F10C5
	commitMagic  = 0xBD5FC000
)

// Mode bits.
const (
	ModeFile uint16 = 0x8000
	ModeDir  uint16 = 0x4000
	PermMask uint16 = 0x01ff
)

// Common errors.
var (
	ErrNotExist   = fmt.Errorf("ext4: no such file or directory")
	ErrExist      = fmt.Errorf("ext4: file exists")
	ErrPerm       = fmt.Errorf("ext4: permission denied")
	ErrIsDir      = fmt.Errorf("ext4: is a directory")
	ErrNotDir     = fmt.Errorf("ext4: not a directory")
	ErrNoSpace    = fmt.Errorf("ext4: no space left on device")
	ErrNoInodes   = fmt.Errorf("ext4: no free inodes")
	ErrNotEmpty   = fmt.Errorf("ext4: directory not empty")
	ErrNameTooBig = fmt.Errorf("ext4: name too long")
	ErrBadFS      = fmt.Errorf("ext4: corrupt file system")
)

// Super is the superblock.
type Super struct {
	Magic         uint32
	BlockCount    int64
	InodeCount    int32
	BitmapStart   int64
	BitmapBlocks  int64
	InodeStart    int64
	InodeBlocks   int64
	JournalStart  int64
	JournalBlocks int64
	DataStart     int64
}

func (sb *Super) marshal() []byte {
	buf := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], sb.Magic)
	le.PutUint64(buf[4:], uint64(sb.BlockCount))
	le.PutUint32(buf[12:], uint32(sb.InodeCount))
	le.PutUint64(buf[16:], uint64(sb.BitmapStart))
	le.PutUint64(buf[24:], uint64(sb.BitmapBlocks))
	le.PutUint64(buf[32:], uint64(sb.InodeStart))
	le.PutUint64(buf[40:], uint64(sb.InodeBlocks))
	le.PutUint64(buf[48:], uint64(sb.JournalStart))
	le.PutUint64(buf[56:], uint64(sb.JournalBlocks))
	le.PutUint64(buf[64:], uint64(sb.DataStart))
	return buf
}

func (sb *Super) unmarshal(buf []byte) error {
	le := binary.LittleEndian
	sb.Magic = le.Uint32(buf[0:])
	if sb.Magic != superMagic {
		return fmt.Errorf("%w: bad superblock magic %#x", ErrBadFS, sb.Magic)
	}
	sb.BlockCount = int64(le.Uint64(buf[4:]))
	sb.InodeCount = int32(le.Uint32(buf[12:]))
	sb.BitmapStart = int64(le.Uint64(buf[16:]))
	sb.BitmapBlocks = int64(le.Uint64(buf[24:]))
	sb.InodeStart = int64(le.Uint64(buf[32:]))
	sb.InodeBlocks = int64(le.Uint64(buf[40:]))
	sb.JournalStart = int64(le.Uint64(buf[48:]))
	sb.JournalBlocks = int64(le.Uint64(buf[56:]))
	sb.DataStart = int64(le.Uint64(buf[64:]))
	return nil
}

// Options configures mkfs.
type Options struct {
	Blocks        int64 // total FS blocks (device capacity / 4 KiB)
	Inodes        int32 // inode table size
	JournalBlocks int64 // journal region size
	DevID         uint8 // device identifier recorded in FTEs
}

// DefaultOptions sizes a file system for the given capacity in bytes.
func DefaultOptions(capacityBytes int64, devID uint8) Options {
	return Options{
		Blocks:        capacityBytes / BlockSize,
		Inodes:        4096,
		JournalBlocks: 1024,
		DevID:         devID,
	}
}

// FS is a mounted file system instance.
type FS struct {
	bio BlockIO
	sb  Super

	devID uint8
	nowFn func() sim.Time

	bitmap      []byte
	dirtyBitmap map[int64]bool // dirty bitmap block indices (relative)
	allocRotor  int64

	inodes      map[uint32]*Inode
	dirtyInodes map[uint32]bool
	freeInodes  []uint32
	dirCache    map[uint32][]DirEntry // dcache: dir ino -> entries

	// pendingFree holds extents freed since the last commit; they are
	// not reusable until the journal commits, closing the race between
	// FTE invalidation and in-flight direct I/O (paper §3.6).
	pendingFree []Extent

	journalSeq uint64

	// inj is the machine's fault plane (nil = inert); it arms the
	// journal crash points in writeTransaction.
	inj *faults.Injector

	// tr is the machine's span tracer (nil = inert); Commit emits a
	// journal-commit span on it.
	tr *trace.Tracer

	mCommits *metrics.Counter

	// Stats for tests and the harness.
	Commits int64
}

// SetInjector attaches the machine's fault plane.
func (fs *FS) SetInjector(inj *faults.Injector) { fs.inj = inj }

// SetTracer attaches the machine's span tracer (nil detaches).
func (fs *FS) SetTracer(tr *trace.Tracer) { fs.tr = tr }

// ReleaseResources returns the file system's recyclable structures —
// the block bitmap and every cached inode's file-table fragments — to
// their shared pools. Only a teardown path that owns the whole
// machine (core.System.Close → Machine.ReleaseResources) may call it;
// the FS must not be used afterwards.
func (fs *FS) ReleaseResources() {
	if fs.bitmap != nil {
		storage.PutBuf(fs.bitmap)
		fs.bitmap = nil
	}
	for _, in := range fs.inodes {
		if in.ft != nil {
			in.ft.Release()
			in.ft = nil
		}
	}
}

// Mkfs formats the medium and returns nothing; mount afterwards.
func Mkfs(bio BlockIO, opt Options) error {
	if opt.Blocks < 64 {
		return fmt.Errorf("ext4: %d blocks too small", opt.Blocks)
	}
	bitmapBlocks := (opt.Blocks + BlockSize*8 - 1) / (BlockSize * 8)
	inodeBlocks := (int64(opt.Inodes) + InodesPerBlock - 1) / InodesPerBlock
	sb := Super{
		Magic:         superMagic,
		BlockCount:    opt.Blocks,
		InodeCount:    opt.Inodes,
		BitmapStart:   1,
		BitmapBlocks:  bitmapBlocks,
		InodeStart:    1 + bitmapBlocks,
		InodeBlocks:   inodeBlocks,
		JournalStart:  1 + bitmapBlocks + inodeBlocks,
		JournalBlocks: opt.JournalBlocks,
		DataStart:     1 + bitmapBlocks + inodeBlocks + opt.JournalBlocks,
	}
	if sb.DataStart >= opt.Blocks {
		return fmt.Errorf("ext4: metadata (%d blocks) exceeds device (%d)", sb.DataStart, opt.Blocks)
	}
	if err := bio.WriteBlocks(nil, 0, 1, sb.marshal()); err != nil {
		return err
	}

	// Bitmap: metadata blocks used, everything else free, tail blocks
	// beyond BlockCount marked used. Pooled scratch: formatted once,
	// written out, returned.
	bitmap := storage.GetBuf(int(bitmapBlocks * BlockSize))
	defer storage.PutBuf(bitmap)
	clear(bitmap)
	for b := int64(0); b < sb.DataStart; b++ {
		bitmap[b/8] |= 1 << (b % 8)
	}
	for b := opt.Blocks; b < bitmapBlocks*BlockSize*8; b++ {
		bitmap[b/8] |= 1 << (b % 8)
	}
	if err := bio.WriteBlocks(nil, sb.BitmapStart, bitmapBlocks, bitmap); err != nil {
		return err
	}

	// Inode table: all zero except the root directory.
	zero := make([]byte, BlockSize)
	for b := int64(0); b < inodeBlocks; b++ {
		if err := bio.WriteBlocks(nil, sb.InodeStart+b, 1, zero); err != nil {
			return err
		}
	}
	root := &Inode{
		Ino:   RootIno,
		Mode:  ModeDir | 0o755,
		Links: 2,
	}
	blk, off := inodeLoc(&sb, RootIno)
	buf := make([]byte, BlockSize)
	if err := bio.ReadBlocks(nil, blk, 1, buf); err != nil {
		return err
	}
	root.marshalInto(buf[off:])
	if err := bio.WriteBlocks(nil, blk, 1, buf); err != nil {
		return err
	}

	// Clean journal header.
	if err := bio.WriteBlocks(nil, sb.JournalStart, 1, zero); err != nil {
		return err
	}
	return nil
}

// inodeLoc returns the block and byte offset of inode ino.
func inodeLoc(sb *Super, ino uint32) (blk int64, off int) {
	idx := int64(ino - 1)
	return sb.InodeStart + idx/InodesPerBlock, int(idx%InodesPerBlock) * InodeSize
}

// Mount reads the superblock, replays the journal if needed, and
// builds the in-memory caches.
func Mount(p *sim.Proc, bio BlockIO, devID uint8, now func() sim.Time) (*FS, error) {
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	buf := make([]byte, BlockSize)
	if err := bio.ReadBlocks(p, 0, 1, buf); err != nil {
		return nil, err
	}
	fs := &FS{
		bio:         bio,
		devID:       devID,
		nowFn:       now,
		dirtyBitmap: make(map[int64]bool),
		inodes:      make(map[uint32]*Inode),
		dirtyInodes: make(map[uint32]bool),
		dirCache:    make(map[uint32][]DirEntry),
		mCommits:    metrics.GetCounter("ext4_commits_total"),
	}
	if err := fs.sb.unmarshal(buf); err != nil {
		return nil, err
	}
	if err := fs.replayJournal(p); err != nil {
		return nil, err
	}

	// Pooled and recycled dirty: ReadBlocks overwrites every byte.
	fs.bitmap = storage.GetBuf(int(fs.sb.BitmapBlocks * BlockSize))
	if err := bio.ReadBlocks(p, fs.sb.BitmapStart, fs.sb.BitmapBlocks, fs.bitmap); err != nil {
		return nil, err
	}
	fs.allocRotor = fs.sb.DataStart

	// Scan the inode table for free slots, reading in batches: a mount
	// happens per machine per sweep cell, so per-block ReadBlocks round
	// trips add up.
	const scanBatch = 32
	tbl := storage.GetBuf(scanBatch * BlockSize)
	defer storage.PutBuf(tbl)
	for b := int64(0); b < fs.sb.InodeBlocks; b += scanBatch {
		n := fs.sb.InodeBlocks - b
		if n > scanBatch {
			n = scanBatch
		}
		if err := bio.ReadBlocks(p, fs.sb.InodeStart+b, n, tbl[:n*BlockSize]); err != nil {
			return nil, err
		}
		for i := 0; i < int(n)*InodesPerBlock; i++ {
			ino := uint32(b*InodesPerBlock+int64(i)) + 1
			if ino > uint32(fs.sb.InodeCount) {
				break
			}
			mode := binary.LittleEndian.Uint16(tbl[i*InodeSize:])
			if mode == 0 && ino != RootIno {
				fs.freeInodes = append(fs.freeInodes, ino)
			}
		}
	}
	return fs, nil
}

// Super returns a copy of the superblock.
func (fs *FS) Super() Super { return fs.sb }

// SetBlockIO swaps the block-device implementation. The kernel mounts
// through an untimed path at boot and then installs its timed,
// cost-charging BlockIO for runtime operation.
func (fs *FS) SetBlockIO(bio BlockIO) { fs.bio = bio }

// DevID returns the device identifier used in this FS's FTEs.
func (fs *FS) DevID() uint8 { return fs.devID }

// now returns the current virtual time for timestamps.
func (fs *FS) now() sim.Time { return fs.nowFn() }

// FreeBlocks reports the number of allocatable blocks (excluding
// pending frees).
func (fs *FS) FreeBlocks() int64 {
	var used int64
	for b := int64(0); b < fs.sb.BlockCount; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) != 0 {
			used++
		}
	}
	return fs.sb.BlockCount - used
}
