package ext4

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/storage"
)

// BlockIO is the file system's view of the block device. The kernel
// supplies an implementation that charges the block-layer and driver
// costs of Table 1; Direct is an untimed implementation over raw
// storage used for mkfs, image building, and recovery tooling.
//
// All addresses are in file-system blocks (4 KiB).
type BlockIO interface {
	ReadBlocks(p *sim.Proc, blk int64, n int64, buf []byte) error
	WriteBlocks(p *sim.Proc, blk int64, n int64, buf []byte) error
	ZeroBlocks(p *sim.Proc, blk int64, n int64) error
	Flush(p *sim.Proc) error
}

// Direct is a zero-latency BlockIO over a raw store or a windowed
// view of one (a virtual function's medium). The proc argument may
// be nil.
type Direct struct {
	St storage.SectorIO
}

var _ BlockIO = (*Direct)(nil)

// ReadBlocks implements BlockIO.
func (d *Direct) ReadBlocks(_ *sim.Proc, blk, n int64, buf []byte) error {
	return d.St.ReadSectors(blk*SectorsPerBlock, n*SectorsPerBlock, buf)
}

// WriteBlocks implements BlockIO.
func (d *Direct) WriteBlocks(_ *sim.Proc, blk, n int64, buf []byte) error {
	return d.St.WriteSectors(blk*SectorsPerBlock, n*SectorsPerBlock, buf)
}

// ZeroBlocks implements BlockIO.
func (d *Direct) ZeroBlocks(_ *sim.Proc, blk, n int64) error {
	return d.St.Zero(blk*SectorsPerBlock, n*SectorsPerBlock)
}

// Flush implements BlockIO.
func (d *Direct) Flush(_ *sim.Proc) error { return nil }

// ErrCrashed is returned by CrashBIO once its write budget is spent.
var ErrCrashed = errors.New("ext4: simulated crash")

// CrashBIO wraps a BlockIO and fails every write after the first
// FailAfter writes have been performed, simulating a power cut for
// journal-recovery tests. Reads continue to work.
type CrashBIO struct {
	Inner     BlockIO
	FailAfter int
	writes    int
}

var _ BlockIO = (*CrashBIO)(nil)

// Writes reports how many writes have been admitted.
func (c *CrashBIO) Writes() int { return c.writes }

// ReadBlocks implements BlockIO.
func (c *CrashBIO) ReadBlocks(p *sim.Proc, blk, n int64, buf []byte) error {
	return c.Inner.ReadBlocks(p, blk, n, buf)
}

// WriteBlocks implements BlockIO.
func (c *CrashBIO) WriteBlocks(p *sim.Proc, blk, n int64, buf []byte) error {
	if c.writes >= c.FailAfter {
		return fmt.Errorf("write block %d: %w", blk, ErrCrashed)
	}
	c.writes++
	return c.Inner.WriteBlocks(p, blk, n, buf)
}

// ZeroBlocks implements BlockIO.
func (c *CrashBIO) ZeroBlocks(p *sim.Proc, blk, n int64) error {
	if c.writes >= c.FailAfter {
		return fmt.Errorf("zero block %d: %w", blk, ErrCrashed)
	}
	c.writes++
	return c.Inner.ZeroBlocks(p, blk, n)
}

// Flush implements BlockIO.
func (c *CrashBIO) Flush(p *sim.Proc) error {
	if c.writes >= c.FailAfter {
		return ErrCrashed
	}
	return c.Inner.Flush(p)
}
