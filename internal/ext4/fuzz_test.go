package ext4

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

// Fuzz targets for the two trickiest mutable structures: the extent
// tree (insert/split/merge under writes, truncates and fallocates) and
// the namespace (rename across directories). The interpreter consumes
// the fuzz input as a byte-coded op program; individual ops may fail
// (that is allowed behaviour), but the file system must never panic,
// must keep fsck clean at every commit, and must survive a remount
// with content intact.

// fuzzFS builds a small fresh file system for fuzz iterations.
func fuzzFS(tb testing.TB) (*FS, *storage.Store) {
	tb.Helper()
	const capacity = 16 << 20
	st := storage.NewBytes(capacity)
	bio := &Direct{St: st}
	opt := DefaultOptions(capacity, 1)
	opt.Inodes = 128
	if err := Mkfs(bio, opt); err != nil {
		tb.Fatal(err)
	}
	fs, err := Mount(nil, bio, 1, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return fs, st
}

// take pops n bytes from the program, zero-padding past the end.
func take(prog []byte, n int) ([]byte, []byte) {
	out := make([]byte, n)
	copy(out, prog)
	if len(prog) > n {
		return out, prog[n:]
	}
	return out, nil
}

func FuzzExtentTree(f *testing.F) {
	// Seeds from scenarios the unit tests exercise: sequential growth,
	// overwrite, a truncate-regrow cycle, sparse fallocate, and
	// interleaved commits.
	f.Add([]byte{0, 0, 0, 16, 0, 8, 0, 4, 3})
	f.Add([]byte{0, 0, 0, 255, 1, 0, 16, 0, 0, 0, 200, 3})
	f.Add([]byte{2, 0, 120, 0, 64, 1, 1, 0, 8, 3, 0, 0, 90, 3})
	f.Add([]byte{0, 3, 7, 200, 1, 0, 0, 0, 0, 40, 2, 0, 255, 3, 0, 1, 1})
	f.Add(bytes.Repeat([]byte{0, 5, 33, 3}, 12))

	const maxFile = 4 << 20 // model buffer bound
	f.Fuzz(func(t *testing.T, prog []byte) {
		fs, st := fuzzFS(t)
		in, err := fs.Create(nil, "/f", 0o644, Root)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]byte, 0, 1<<16)
		pat := byte(1)

		for len(prog) > 0 {
			var hdr []byte
			hdr, prog = take(prog, 1)
			switch hdr[0] % 4 {
			case 0: // write at block-ish granularity
				var arg []byte
				arg, prog = take(prog, 3)
				off := (int64(arg[0])<<8 | int64(arg[1])) * 512
				n := (int(arg[2]) + 1) * 512
				if off+int64(n) > maxFile {
					off = maxFile - int64(n)
				}
				data := bytes.Repeat([]byte{pat}, n)
				pat++
				if _, err := fs.WriteAt(nil, in, off, data); err != nil {
					t.Fatalf("write off=%d n=%d: %v", off, n, err)
				}
				if grow := off + int64(n) - int64(len(model)); grow > 0 {
					model = append(model, make([]byte, grow)...)
				}
				copy(model[off:], data)
			case 1: // truncate
				var arg []byte
				arg, prog = take(prog, 2)
				size := (int64(arg[0])<<8 | int64(arg[1])) * 512 % maxFile
				if err := fs.Truncate(nil, in, size); err != nil {
					t.Fatalf("truncate %d: %v", size, err)
				}
				if size <= int64(len(model)) {
					model = model[:size]
				} else {
					model = append(model, make([]byte, size-int64(len(model)))...)
				}
			case 2: // fallocate (extends size with zeroed blocks)
				var arg []byte
				arg, prog = take(prog, 2)
				size := (int64(arg[0])<<8 | int64(arg[1])) * 512 % maxFile
				if err := fs.Fallocate(nil, in, size); err != nil {
					t.Fatalf("fallocate %d: %v", size, err)
				}
				if size > int64(len(model)) {
					model = append(model, make([]byte, size-int64(len(model)))...)
				}
			case 3: // commit + fsck
				if err := fs.Commit(nil); err != nil {
					t.Fatalf("commit: %v", err)
				}
				if err := fs.Check(nil); err != nil {
					t.Fatalf("fsck mid-program: %v", err)
				}
			}
		}

		if err := fs.Commit(nil); err != nil {
			t.Fatalf("final commit: %v", err)
		}
		if err := fs.Check(nil); err != nil {
			t.Fatalf("final fsck: %v", err)
		}

		// Remount and verify the extent tree maps back to the same
		// bytes the model predicts.
		fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
		if err != nil {
			t.Fatalf("remount: %v", err)
		}
		if err := fs2.Check(nil); err != nil {
			t.Fatalf("fsck after remount: %v", err)
		}
		in2, err := fs2.Lookup(nil, "/f", Root)
		if err != nil {
			t.Fatal(err)
		}
		if in2.Size != int64(len(model)) {
			t.Fatalf("size after remount = %d, model %d", in2.Size, len(model))
		}
		got := make([]byte, len(model))
		if _, err := fs2.ReadAt(nil, in2, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, model) {
			t.Fatal("content after remount diverged from model")
		}
	})
}

func FuzzRename(f *testing.F) {
	// Seeds: simple rename, rename into a subdirectory, chained
	// renames, rename-over-existing, and unlink/recreate churn.
	f.Add([]byte{0, 0, 2, 0, 1, 4})
	f.Add([]byte{1, 4, 0, 0, 2, 0, 5, 4})
	f.Add([]byte{0, 0, 2, 0, 1, 2, 1, 2, 2, 2, 3, 4})
	f.Add([]byte{0, 0, 0, 1, 2, 0, 1, 4, 3, 1})
	f.Add([]byte{1, 4, 1, 5, 0, 0, 2, 0, 4, 2, 4, 5, 3, 4, 4})

	// A small closed set of names keeps the op space dense: renames
	// frequently collide, cross directories, and hit occupied targets.
	names := []string{"/a", "/b", "/c", "/d1", "/d2", "/d1/x", "/d2/y"}
	f.Fuzz(func(t *testing.T, prog []byte) {
		fs, st := fuzzFS(t)
		for len(prog) > 0 {
			var hdr []byte
			hdr, prog = take(prog, 1)
			op := hdr[0] % 5
			var arg []byte
			arg, prog = take(prog, 1)
			path := names[int(arg[0])%len(names)]
			switch op {
			case 0: // create (may fail: exists, parent missing)
				if in, err := fs.Create(nil, path, 0o644, Root); err == nil {
					if _, err := fs.WriteAt(nil, in, 0, []byte(path)); err != nil {
						t.Fatalf("write %s: %v", path, err)
					}
				}
			case 1: // mkdir (may fail: exists, parent missing)
				_, _ = fs.Mkdir(nil, path, 0o755, Root)
			case 2: // rename (may fail: missing source, bad target)
				var arg2 []byte
				arg2, prog = take(prog, 1)
				_ = fs.Rename(nil, path, names[int(arg2[0])%len(names)], Root)
			case 3: // unlink (may fail: missing, is-dir)
				_ = fs.Unlink(nil, path, Root)
			case 4: // commit + fsck
				if err := fs.Commit(nil); err != nil {
					t.Fatalf("commit: %v", err)
				}
				if err := fs.Check(nil); err != nil {
					t.Fatalf("fsck mid-program: %v", err)
				}
			}
		}
		if err := fs.Commit(nil); err != nil {
			t.Fatalf("final commit: %v", err)
		}
		if err := fs.Check(nil); err != nil {
			t.Fatalf("final fsck: %v", err)
		}
		// Remount: the namespace must come back fsck-clean, and every
		// surviving file must read back its own name (written at
		// create), proving directory entries point at the right inodes.
		fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
		if err != nil {
			t.Fatalf("remount: %v", err)
		}
		if err := fs2.Check(nil); err != nil {
			t.Fatalf("fsck after remount: %v", err)
		}
	})
}
