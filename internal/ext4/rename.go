package ext4

import (
	"fmt"

	"repro/internal/sim"
)

// ErrInvalidMove rejects renaming a directory into its own subtree
// (POSIX EINVAL), which would orphan the directory from the namespace
// while its blocks stay allocated.
var ErrInvalidMove = fmt.Errorf("ext4: cannot move directory into its own subtree")

// Rename moves the link at oldPath to newPath, replacing a regular
// file at the destination if one exists (POSIX rename semantics,
// minus cross-directory dir moves of non-empty directories, which the
// workloads don't need). The inode number is stable across the move,
// so BypassD mappings of the file are unaffected.
func (fs *FS) Rename(p *sim.Proc, oldPath, newPath string, c Cred) error {
	oldParent, oldName, err := fs.nameiParent(p, oldPath, c)
	if err != nil {
		return err
	}
	newParent, newName, err := fs.nameiParent(p, newPath, c)
	if err != nil {
		return err
	}
	if !oldParent.allows(c, 3) || !newParent.allows(c, 3) {
		return ErrPerm
	}

	oldEntries, err := fs.ReadDir(p, oldParent)
	if err != nil {
		return err
	}
	srcIdx := -1
	for i, e := range oldEntries {
		if e.Name == oldName {
			srcIdx = i
			break
		}
	}
	if srcIdx < 0 {
		return ErrNotExist
	}
	srcIno := oldEntries[srcIdx].Ino
	src, err := fs.GetInode(p, srcIno)
	if err != nil {
		return err
	}
	if src.IsDir() {
		// splitPath already normalized "." and "..", so a component
		// prefix match means newPath lies inside the moving directory.
		oldComps, _ := splitPath(oldPath)
		newComps, _ := splitPath(newPath)
		if len(newComps) > len(oldComps) {
			inside := true
			for i, c := range oldComps {
				if newComps[i] != c {
					inside = false
					break
				}
			}
			if inside {
				return ErrInvalidMove
			}
		}
	}

	// A destination entry is replaced (files only).
	if dst, err := fs.namei(p, newPath, c); err == nil {
		if dst.Ino == srcIno {
			return nil // rename onto itself
		}
		if dst.IsDir() {
			return ErrIsDir
		}
		if err := fs.Unlink(p, newPath, c); err != nil {
			return err
		}
		// Directory contents may have shifted: re-read below.
	} else if err != ErrNotExist {
		return err
	}

	now := fs.now()
	if oldParent == newParent {
		entries, err := fs.ReadDir(p, oldParent)
		if err != nil {
			return err
		}
		for i := range entries {
			if entries[i].Name == oldName && entries[i].Ino == srcIno {
				entries[i].Name = newName
				break
			}
		}
		if err := fs.writeDir(p, oldParent, entries); err != nil {
			return err
		}
		oldParent.Mtime = now
		fs.markDirty(oldParent)
		return nil
	}

	oldEntries, err = fs.ReadDir(p, oldParent)
	if err != nil {
		return err
	}
	kept := oldEntries[:0]
	for _, e := range oldEntries {
		if !(e.Name == oldName && e.Ino == srcIno) {
			kept = append(kept, e)
		}
	}
	if err := fs.writeDir(p, oldParent, kept); err != nil {
		return err
	}
	newEntries, err := fs.ReadDir(p, newParent)
	if err != nil {
		return err
	}
	newEntries = append(newEntries, DirEntry{Ino: srcIno, Name: newName})
	if err := fs.writeDir(p, newParent, newEntries); err != nil {
		return err
	}
	oldParent.Mtime = now
	newParent.Mtime = now
	src.Ctime = now
	fs.markDirty(oldParent)
	fs.markDirty(newParent)
	fs.markDirty(src)
	return nil
}

// Relink atomically moves the blocks of src beyond dst's current end
// — SplitFS's relink primitive, which the paper (§5.1) names as the
// more intrusive alternative for fast appends: an application appends
// into a staging file from userspace, then relinks the staged blocks
// into the target with one metadata operation and no data copy.
//
// src must cover whole blocks (its size a multiple of the block
// size... the tail is permitted to be partial only when dst ends on a
// block boundary, which is the staging pattern). After the call src
// is empty; dst has grown by src's size.
func (fs *FS) Relink(p *sim.Proc, src, dst *Inode) error {
	if src.IsDir() || dst.IsDir() {
		return ErrIsDir
	}
	if dst.Size%BlockSize != 0 && src.Size > 0 {
		return ErrBadFS // staging append requires block-aligned target end
	}
	moved := src.Extents
	srcSize := src.Size

	// Graft the extents onto dst, preserving file-block continuity.
	for _, e := range moved {
		dst.appendExtent(int64(e.Start), int64(e.Count))
	}
	if dst.ft != nil {
		// Extend dst's shared file table so existing mappings see the
		// relinked blocks immediately.
		m := dst.BlockMap()
		for fb := dst.AllocatedBlocks() - int64(lenBlocks(moved)); fb < int64(len(m)); fb++ {
			dst.ft.SetPage(int(fb), m[fb]*SectorsPerBlock)
		}
	}
	dst.Size += srcSize
	dst.Mtime = fs.now()

	// Empty the staging file: its blocks now belong to dst, so they
	// are NOT freed.
	src.Extents = nil
	src.Size = 0
	if src.ft != nil {
		src.ft.Truncate(0)
	}
	src.Mtime = fs.now()

	fs.markDirty(src)
	fs.markDirty(dst)
	return nil
}

func lenBlocks(exts []Extent) (n uint32) {
	for _, e := range exts {
		n += e.Count
	}
	return n
}
