package ext4

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Extent overflow chain block layout: next(u32) count(u32) then
// 12-byte extent records.
const extentsPerChainBlock = (BlockSize - 8) / 12

// chainCount returns the number of overflow blocks needed for n
// extents.
func chainCount(n int) int {
	if n <= InlineExtents {
		return 0
	}
	return (n - InlineExtents + extentsPerChainBlock - 1) / extentsPerChainBlock
}

// loadExtentChain reads the overflow chain of in from disk. Inline
// extents were already parsed from the inode itself.
func (fs *FS) loadExtentChain(p *sim.Proc, in *Inode) error {
	in.chainBlocks = in.chainBlocks[:0]
	next := in.extChain
	buf := make([]byte, BlockSize)
	for next != 0 {
		if int64(next) >= fs.sb.BlockCount {
			return fmt.Errorf("%w: extent chain block %d", ErrBadFS, next)
		}
		in.chainBlocks = append(in.chainBlocks, next)
		if err := fs.bio.ReadBlocks(p, int64(next), 1, buf); err != nil {
			return err
		}
		le := binary.LittleEndian
		nxt := le.Uint32(buf[0:])
		cnt := int(le.Uint32(buf[4:]))
		if cnt > extentsPerChainBlock {
			return fmt.Errorf("%w: extent chain count %d", ErrBadFS, cnt)
		}
		for i := 0; i < cnt; i++ {
			off := 8 + i*12
			in.Extents = append(in.Extents, Extent{
				FileBlock: le.Uint32(buf[off:]),
				Start:     le.Uint32(buf[off+4:]),
				Count:     le.Uint32(buf[off+8:]),
			})
		}
		next = nxt
		if len(in.chainBlocks) > 1<<20 {
			return fmt.Errorf("%w: extent chain loop", ErrBadFS)
		}
	}
	sort.Slice(in.Extents, func(i, j int) bool { return in.Extents[i].FileBlock < in.Extents[j].FileBlock })
	return nil
}

// LookupBlock resolves file block fb to its disk block.
func (in *Inode) LookupBlock(fb int64) (int64, bool) {
	i := sort.Search(len(in.Extents), func(i int) bool {
		e := in.Extents[i]
		return int64(e.FileBlock)+int64(e.Count) > fb
	})
	if i == len(in.Extents) {
		return 0, false
	}
	e := in.Extents[i]
	if fb < int64(e.FileBlock) {
		return 0, false
	}
	return int64(e.Start) + (fb - int64(e.FileBlock)), true
}

// appendExtent adds a run of disk blocks at the end of the file's
// block space, merging with the previous extent when contiguous.
func (in *Inode) appendExtent(start int64, count int64) {
	fb := in.AllocatedBlocks()
	if n := len(in.Extents); n > 0 {
		last := &in.Extents[n-1]
		if int64(last.Start)+int64(last.Count) == start &&
			int64(last.FileBlock)+int64(last.Count) == fb {
			last.Count += uint32(count)
			return
		}
	}
	in.Extents = append(in.Extents, Extent{
		FileBlock: uint32(fb),
		Start:     uint32(start),
		Count:     uint32(count),
	})
}

// truncateExtents removes coverage beyond keepBlocks file blocks,
// returning the freed disk extents.
func (in *Inode) truncateExtents(keepBlocks int64) []Extent {
	var freed []Extent
	kept := in.Extents[:0]
	for _, e := range in.Extents {
		fb, cnt := int64(e.FileBlock), int64(e.Count)
		switch {
		case fb+cnt <= keepBlocks:
			kept = append(kept, e)
		case fb >= keepBlocks:
			freed = append(freed, Extent{Start: e.Start, Count: e.Count})
		default:
			keep := keepBlocks - fb
			kept = append(kept, Extent{FileBlock: e.FileBlock, Start: e.Start, Count: uint32(keep)})
			freed = append(freed, Extent{Start: e.Start + uint32(keep), Count: uint32(cnt - keep)})
		}
	}
	in.Extents = kept
	return freed
}

// BlockMap returns the disk block of every allocated file page, used
// to build File Table fragments. Index i maps file byte range
// [i*4096, (i+1)*4096).
func (in *Inode) BlockMap() []int64 {
	m := make([]int64, in.AllocatedBlocks())
	for _, e := range in.Extents {
		for k := int64(0); k < int64(e.Count); k++ {
			m[int64(e.FileBlock)+k] = int64(e.Start) + k
		}
	}
	return m
}
