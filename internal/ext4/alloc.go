package ext4

// Block allocation: a bitmap allocator with a goal hint for
// contiguity and delayed reuse of freed blocks.
//
// Freed extents sit in pendingFree until the next journal commit.
// Until then their bitmap bits stay set, so they cannot be handed to
// another file while a revoked process might still have translated-
// but-unissued I/O against them (paper §3.6: "delaying re-allocation
// of blocks until a sync point").

// testBit reports whether block b is in use.
func (fs *FS) testBit(b int64) bool {
	return fs.bitmap[b/8]&(1<<(b%8)) != 0
}

func (fs *FS) setBit(b int64) {
	fs.bitmap[b/8] |= 1 << (b % 8)
	fs.dirtyBitmap[b/8/BlockSize] = true
}

func (fs *FS) clearBit(b int64) {
	fs.bitmap[b/8] &^= 1 << (b % 8)
	fs.dirtyBitmap[b/8/BlockSize] = true
}

// setRun claims blocks [b, b+n), filling whole bitmap bytes at a time
// — large fallocates walk this per block otherwise.
func (fs *FS) setRun(b, n int64) {
	for n > 0 {
		if b%8 == 0 && n >= 8 {
			fs.bitmap[b/8] = 0xff
			fs.dirtyBitmap[b/8/BlockSize] = true
			b += 8
			n -= 8
			continue
		}
		fs.setBit(b)
		b++
		n--
	}
}

// clearRun releases blocks [b, b+n), byte-filling like setRun.
func (fs *FS) clearRun(b, n int64) {
	for n > 0 {
		if b%8 == 0 && n >= 8 {
			fs.bitmap[b/8] = 0
			fs.dirtyBitmap[b/8/BlockSize] = true
			b += 8
			n -= 8
			continue
		}
		fs.clearBit(b)
		b++
		n--
	}
}

// runAt returns the length of the free run starting at b, capped at
// want, skipping whole free bitmap bytes where possible.
func (fs *FS) runAt(b, want int64) int64 {
	var n int64
	for n < want && b+n < fs.sb.BlockCount {
		if (b+n)%8 == 0 && want-n >= 8 && b+n+8 <= fs.sb.BlockCount && fs.bitmap[(b+n)/8] == 0 {
			n += 8
			continue
		}
		if fs.testBit(b + n) {
			break
		}
		n++
	}
	return n
}

// allocBlocks claims count blocks, preferring a contiguous run at
// goal (pass <0 for no preference). The result may be fragmented; it
// is ordered and non-overlapping. Claimed bits are set immediately.
func (fs *FS) allocBlocks(count, goal int64) ([]Extent, error) {
	if count <= 0 {
		return nil, nil
	}
	var out []Extent
	remaining := count
	claim := func(start, n int64) {
		fs.setRun(start, n)
		out = append(out, Extent{Start: uint32(start), Count: uint32(n)})
		remaining -= n
	}

	// Try the goal first for the whole remainder.
	if goal >= fs.sb.DataStart && goal < fs.sb.BlockCount && !fs.testBit(goal) {
		if n := fs.runAt(goal, remaining); n > 0 {
			claim(goal, n)
		}
	}
	// Then scan from the rotor, taking runs as found.
	scanned := int64(0)
	pos := fs.allocRotor
	dataSpan := fs.sb.BlockCount - fs.sb.DataStart
	for remaining > 0 && scanned < dataSpan {
		if pos >= fs.sb.BlockCount {
			pos = fs.sb.DataStart
		}
		if pos%8 == 0 && pos+8 <= fs.sb.BlockCount && fs.bitmap[pos/8] == 0xff {
			// Whole byte in use: skip eight blocks at once.
			pos += 8
			scanned += 8
			continue
		}
		if fs.testBit(pos) {
			pos++
			scanned++
			continue
		}
		n := fs.runAt(pos, remaining)
		claim(pos, n)
		pos += n
		scanned += n
	}
	fs.allocRotor = pos
	if remaining > 0 {
		// Roll back partial claims.
		for _, e := range out {
			fs.clearRun(int64(e.Start), int64(e.Count))
		}
		return nil, ErrNoSpace
	}
	return out, nil
}

// allocMetaBlock claims a single block for metadata (extent chains).
func (fs *FS) allocMetaBlock() (int64, error) {
	ext, err := fs.allocBlocks(1, -1)
	if err != nil {
		return 0, err
	}
	return int64(ext[0].Start), nil
}

// deferFree queues extents for release at the next commit.
func (fs *FS) deferFree(exts []Extent) {
	fs.pendingFree = append(fs.pendingFree, exts...)
}

// applyPendingFree clears the bitmap bits of deferred frees. Called
// by Commit after the journal transaction is durable.
func (fs *FS) applyPendingFree() {
	for _, e := range fs.pendingFree {
		for i := int64(0); i < int64(e.Count); i++ {
			fs.clearBit(int64(e.Start) + i)
		}
	}
	fs.pendingFree = fs.pendingFree[:0]
}

// PendingFreeBlocks reports blocks awaiting release (tests).
func (fs *FS) PendingFreeBlocks() int64 {
	var n int64
	for _, e := range fs.pendingFree {
		n += int64(e.Count)
	}
	return n
}
