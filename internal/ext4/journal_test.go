package ext4

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestJournalRecoveryAtEveryCutPoint simulates a power cut after every
// possible write during a metadata-heavy operation and verifies that
// the remounted file system passes fsck and contains either the old or
// the new state — never a torn one.
func TestJournalRecoveryAtEveryCutPoint(t *testing.T) {
	// Dry run to learn how many writes the scenario performs.
	dryWrites := func() int {
		fs, _ := newFS(t)
		crash := &CrashBIO{Inner: fs.bio, FailAfter: 1 << 30}
		fs.bio = crash
		runScenario(t, fs, true)
		return crash.Writes()
	}()

	for cut := 0; cut <= dryWrites; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			fs, st := newFS(t)
			// Baseline state, fully committed.
			seedScenario(t, fs)
			crash := &CrashBIO{Inner: fs.bio, FailAfter: cut}
			fs.bio = crash
			runScenario(t, fs, false) // may fail partway: that's the point

			// Power cut. Remount from the raw store.
			fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
			if err != nil {
				t.Fatalf("remount after cut %d: %v", cut, err)
			}
			if err := fs2.Check(nil); err != nil {
				t.Fatalf("fsck after cut %d: %v", cut, err)
			}
			// The pre-existing committed file must always survive.
			in, err := fs2.Lookup(nil, "/stable", Root)
			if err != nil {
				t.Fatalf("committed file lost after cut %d: %v", cut, err)
			}
			got := make([]byte, 6)
			if _, err := fs2.ReadAt(nil, in, 0, got); err != nil {
				t.Fatal(err)
			}
			if string(got) != "stable" {
				t.Fatalf("committed data corrupted after cut %d: %q", cut, got)
			}
			// The in-flight file is all-or-nothing at the metadata
			// level: if present it must resolve and have a coherent
			// extent map (Check covered that); data may be stale
			// (no data journaling, as in the paper).
			if in2, err := fs2.Lookup(nil, "/victim", Root); err == nil {
				if in2.Size < 0 || in2.Blocks() > in2.AllocatedBlocks() {
					t.Fatalf("torn inode after cut %d: size=%d", cut, in2.Size)
				}
			} else if !errors.Is(err, ErrNotExist) {
				t.Fatalf("lookup after cut %d: %v", cut, err)
			}
		})
	}
}

// seedScenario creates the committed baseline.
func seedScenario(t *testing.T, fs *FS) {
	t.Helper()
	in, err := fs.Create(nil, "/stable", 0o644, Root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(nil, in, 0, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
}

// runScenario performs the metadata-heavy operation that gets cut.
func runScenario(t *testing.T, fs *FS, mustSucceed bool) {
	t.Helper()
	fail := func(err error) {
		if mustSucceed {
			t.Fatal(err)
		}
	}
	in, err := fs.Create(nil, "/victim", 0o644, Root)
	if err != nil {
		fail(err)
		return
	}
	if _, err := fs.WriteAt(nil, in, 0, bytes.Repeat([]byte{0x5a}, 3*BlockSize)); err != nil {
		fail(err)
		return
	}
	if err := fs.Truncate(nil, in, BlockSize); err != nil {
		fail(err)
		return
	}
	if err := fs.Commit(nil); err != nil {
		fail(err)
		return
	}
}

// TestModelBasedRandomOps runs a random operation sequence against the
// file system and an in-memory reference model, checking contents,
// fsck, and remount equivalence.
func TestModelBasedRandomOps(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fs, st := newFS(t)
			rng := rand.New(rand.NewSource(seed))
			model := map[string][]byte{}
			names := []string{"/a", "/b", "/c", "/d", "/e"}

			lookup := func(name string) *Inode {
				in, err := fs.Lookup(nil, name, Root)
				if err != nil {
					t.Fatalf("lookup %s: %v", name, err)
				}
				return in
			}

			for step := 0; step < 300; step++ {
				name := names[rng.Intn(len(names))]
				_, exists := model[name]
				switch op := rng.Intn(10); {
				case op < 4: // write at random offset
					if !exists {
						if _, err := fs.Create(nil, name, 0o644, Root); err != nil {
							t.Fatalf("create %s: %v", name, err)
						}
						model[name] = nil
					}
					off := rng.Int63n(6 * BlockSize)
					n := rng.Intn(3*BlockSize) + 1
					data := make([]byte, n)
					rng.Read(data)
					if _, err := fs.WriteAt(nil, lookup(name), off, data); err != nil {
						t.Fatalf("write %s: %v", name, err)
					}
					buf := model[name]
					if int64(len(buf)) < off+int64(n) {
						nb := make([]byte, off+int64(n))
						copy(nb, buf)
						buf = nb
					}
					copy(buf[off:], data)
					model[name] = buf
				case op < 6: // truncate
					if !exists {
						continue
					}
					size := rng.Int63n(4 * BlockSize)
					if err := fs.Truncate(nil, lookup(name), size); err != nil {
						t.Fatalf("truncate %s: %v", name, err)
					}
					buf := model[name]
					if int64(len(buf)) >= size {
						model[name] = buf[:size]
					} else {
						nb := make([]byte, size)
						copy(nb, buf)
						model[name] = nb
					}
				case op < 7: // unlink
					if !exists {
						continue
					}
					if err := fs.Unlink(nil, name, Root); err != nil {
						t.Fatalf("unlink %s: %v", name, err)
					}
					delete(model, name)
				case op < 8: // commit
					if err := fs.Commit(nil); err != nil {
						t.Fatal(err)
					}
				default: // verify one file
					if !exists {
						continue
					}
					in := lookup(name)
					want := model[name]
					if in.Size != int64(len(want)) {
						t.Fatalf("%s size = %d, model %d", name, in.Size, len(want))
					}
					got := make([]byte, len(want))
					if _, err := fs.ReadAt(nil, in, 0, got); err != nil {
						t.Fatalf("read %s: %v", name, err)
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("%s content diverged from model at step %d", name, step)
					}
				}
			}
			if err := fs.Commit(nil); err != nil {
				t.Fatal(err)
			}
			if err := fs.Check(nil); err != nil {
				t.Fatalf("fsck: %v", err)
			}

			// Remount and verify every file against the model.
			fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := fs2.Check(nil); err != nil {
				t.Fatalf("fsck after remount: %v", err)
			}
			for name, want := range model {
				in, err := fs2.Lookup(nil, name, Root)
				if err != nil {
					t.Fatalf("remount lookup %s: %v", name, err)
				}
				got := make([]byte, len(want))
				if _, err := fs2.ReadAt(nil, in, 0, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s content diverged after remount", name)
				}
			}
		})
	}
}
