package ext4

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

const testCapacity = 64 << 20 // 64 MiB

// newFS formats and mounts a fresh file system over a new store.
func newFS(t *testing.T) (*FS, *storage.Store) {
	t.Helper()
	st := storage.NewBytes(testCapacity)
	bio := &Direct{St: st}
	opt := DefaultOptions(testCapacity, 1)
	opt.Inodes = 512
	if err := Mkfs(bio, opt); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(nil, bio, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fs, st
}

func TestMkfsMountRoundTrip(t *testing.T) {
	fs, _ := newFS(t)
	root, err := fs.GetInode(nil, RootIno)
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsDir() {
		t.Fatal("root is not a directory")
	}
	if err := fs.Check(nil); err != nil {
		t.Fatalf("fresh fs fails fsck: %v", err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs, _ := newFS(t)
	in, err := fs.Create(nil, "/data.bin", 0o644, Root)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(w)
	if n, err := fs.WriteAt(nil, in, 0, w); err != nil || n != len(w) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if in.Size != 10000 {
		t.Fatalf("size = %d", in.Size)
	}
	r := make([]byte, 10000)
	if n, err := fs.ReadAt(nil, in, 0, r); err != nil || n != len(r) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("data mismatch")
	}
	// Short read at EOF.
	if n, err := fs.ReadAt(nil, in, 9000, r); err != nil || n != 1000 {
		t.Fatalf("eof read: n=%d err=%v", n, err)
	}
	if n, err := fs.ReadAt(nil, in, 20000, r); err != nil || n != 0 {
		t.Fatalf("past-eof read: n=%d err=%v", n, err)
	}
}

func TestUnalignedOverwrites(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/f", 0o644, Root)
	base := make([]byte, 3*BlockSize)
	for i := range base {
		base[i] = 0x11
	}
	if _, err := fs.WriteAt(nil, in, 0, base); err != nil {
		t.Fatal(err)
	}
	patch := []byte("HELLO-ACROSS-BLOCKS")
	off := int64(BlockSize - 7)
	if _, err := fs.WriteAt(nil, in, off, patch); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[off:], patch)
	got := make([]byte, len(base))
	if _, err := fs.ReadAt(nil, in, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("RMW overwrite corrupted surrounding data")
	}
}

func TestDirectories(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.Mkdir(nil, "/a", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(nil, "/a/b", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(nil, "/a/b/c.txt", 0o644, Root); err != nil {
		t.Fatal(err)
	}
	in, err := fs.Lookup(nil, "/a/b/c.txt", Root)
	if err != nil {
		t.Fatal(err)
	}
	if in.IsDir() {
		t.Fatal("file resolved as dir")
	}
	if _, err := fs.Lookup(nil, "/a/b/missing", Root); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if _, err := fs.Create(nil, "/a/b/c.txt", 0o644, Root); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create = %v, want ErrExist", err)
	}
	if _, err := fs.Create(nil, "/a/b/c.txt/x", 0o644, Root); !errors.Is(err, ErrNotDir) {
		t.Fatalf("create under file = %v, want ErrNotDir", err)
	}
	dir, _ := fs.Lookup(nil, "/a/b", Root)
	entries, err := fs.ReadDir(nil, dir)
	if err != nil || len(entries) != 1 || entries[0].Name != "c.txt" {
		t.Fatalf("readdir = %v, %v", entries, err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermissions(t *testing.T) {
	fs, _ := newFS(t)
	alice := Cred{UID: 100, GID: 100}
	bob := Cred{UID: 200, GID: 200}
	carol := Cred{UID: 300, GID: 100} // shares alice's group

	// Root's / is 0755, so alice needs her own writable directory.
	if _, err := fs.Mkdir(nil, "/home", 0o777, Root); err != nil {
		t.Fatal(err)
	}
	in, err := fs.Create(nil, "/home/secret", 0o640, alice)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Access(in, alice, true); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	if err := fs.Access(in, carol, false); err != nil {
		t.Fatalf("group read: %v", err)
	}
	if err := fs.Access(in, carol, true); !errors.Is(err, ErrPerm) {
		t.Fatalf("group write = %v, want ErrPerm", err)
	}
	if err := fs.Access(in, bob, false); !errors.Is(err, ErrPerm) {
		t.Fatalf("other read = %v, want ErrPerm", err)
	}
	if err := fs.Access(in, Root, true); err != nil {
		t.Fatalf("root write: %v", err)
	}
	// Bob cannot create in a 0700 dir owned by alice — nor in /.
	if _, err := fs.Mkdir(nil, "/home/priv", 0o700, alice); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(nil, "/home/priv/x", 0o644, bob); !errors.Is(err, ErrPerm) {
		t.Fatalf("create in private dir = %v, want ErrPerm", err)
	}
	if _, err := fs.Create(nil, "/rootonly", 0o644, bob); !errors.Is(err, ErrPerm) {
		t.Fatalf("create in / by non-root = %v, want ErrPerm", err)
	}
}

// newTinyFS builds a small file system whose data area can be nearly
// filled, so allocation holes actually fragment the next big file.
func newTinyFS(t *testing.T) (*FS, *storage.Store) {
	t.Helper()
	const capacity = 4 << 20
	st := storage.NewBytes(capacity)
	bio := &Direct{St: st}
	opt := DefaultOptions(capacity, 1)
	opt.Inodes = 1024
	opt.JournalBlocks = 64
	if err := Mkfs(bio, opt); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(nil, bio, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fs, st
}

// fragment fills most of the disk with 1-block files and frees every
// other one, leaving single-block holes.
func fragment(t *testing.T, fs *FS, files int) {
	t.Helper()
	blk := make([]byte, BlockSize)
	for i := 0; i < files; i++ {
		in, err := fs.Create(nil, fmt.Sprintf("/frag%d", i), 0o644, Root)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(nil, in, 0, blk); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < files; i += 2 {
		if err := fs.Unlink(nil, fmt.Sprintf("/frag%d", i), Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Commit(nil); err != nil { // release pending frees
		t.Fatal(err)
	}
}

func TestExtentChainSpill(t *testing.T) {
	fs, st := newTinyFS(t)
	fragment(t, fs, 600)
	in, err := fs.Create(nil, "/big", 0o644, Root)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 350*BlockSize)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := fs.WriteAt(nil, in, 0, data); err != nil {
		t.Fatal(err)
	}
	if len(in.Extents) <= InlineExtents {
		t.Fatalf("extents = %d, want > %d (fragmentation failed)", len(in.Extents), InlineExtents)
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}

	// Remount cold and verify the chain reloads correctly.
	fs2, err := Mount(nil, &Direct{St: st}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := fs2.Lookup(nil, "/big", Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(in2.Extents) != len(in.Extents) {
		t.Fatalf("extent count after remount = %d, want %d", len(in2.Extents), len(in.Extents))
	}
	got := make([]byte, len(data))
	if _, err := fs2.ReadAt(nil, in2, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("data mismatch after chain reload")
	}
	if err := fs2.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateShrinkAndRegrowZeroes(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/t", 0o644, Root)
	data := make([]byte, 2*BlockSize)
	for i := range data {
		data[i] = 0xaa
	}
	if _, err := fs.WriteAt(nil, in, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(nil, in, 100); err != nil {
		t.Fatal(err)
	}
	if in.Size != 100 {
		t.Fatalf("size = %d", in.Size)
	}
	if fs.PendingFreeBlocks() != 1 {
		t.Fatalf("pending free = %d, want 1", fs.PendingFreeBlocks())
	}
	if err := fs.Truncate(nil, in, 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*BlockSize)
	if _, err := fs.ReadAt(nil, in, 0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0)
		if i < 100 {
			want = 0xaa
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x (stale data exposed)", i, b, want)
		}
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFallocateZeroes(t *testing.T) {
	fs, _ := newFS(t)
	// Dirty some blocks with a secret, free them, recreate.
	in, _ := fs.Create(nil, "/secret", 0o600, Root)
	secret := bytes.Repeat([]byte("PASSWORD"), BlockSize/8)
	if _, err := fs.WriteAt(nil, in, 0, secret); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(nil, "/secret", Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	in2, _ := fs.Create(nil, "/fresh", 0o644, Root)
	if err := fs.Fallocate(nil, in2, BlockSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if _, err := fs.ReadAt(nil, in2, 0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("fallocated block leaked old data at %d: %#x", i, b)
		}
	}
}

func TestSparseWritePastEOFZeroFills(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/sparse", 0o644, Root)
	if _, err := fs.WriteAt(nil, in, 0, []byte("head")); err != nil {
		t.Fatal(err)
	}
	off := int64(3*BlockSize + 17)
	if _, err := fs.WriteAt(nil, in, off, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, off+4)
	if _, err := fs.ReadAt(nil, in, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:4]) != "head" || string(got[off:]) != "tail" {
		t.Fatal("sparse write lost data")
	}
	for i := int64(4); i < off; i++ {
		if got[i] != 0 {
			t.Fatalf("gap byte %d = %#x, want 0", i, got[i])
		}
	}
}

func TestUnlinkDefersBlockReuse(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/victim", 0o644, Root)
	data := make([]byte, 4*BlockSize)
	if _, err := fs.WriteAt(nil, in, 0, data); err != nil {
		t.Fatal(err)
	}
	victimBlocks := in.BlockMap()
	if err := fs.Unlink(nil, "/victim", Root); err != nil {
		t.Fatal(err)
	}
	// Before commit: the freed blocks must not be reallocated.
	in2, _ := fs.Create(nil, "/next", 0o644, Root)
	if _, err := fs.WriteAt(nil, in2, 0, data); err != nil {
		t.Fatal(err)
	}
	reused := map[int64]bool{}
	for _, b := range in2.BlockMap() {
		reused[b] = true
	}
	for _, b := range victimBlocks {
		if reused[b] {
			t.Fatalf("block %d reused before sync point", b)
		}
	}
	// After commit they are reusable.
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if fs.PendingFreeBlocks() != 0 {
		t.Fatalf("pending free = %d after commit", fs.PendingFreeBlocks())
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileTableTracksAllocation(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/f", 0o644, Root)
	if _, err := fs.WriteAt(nil, in, 0, make([]byte, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	ft, built := fs.FileTable(in)
	if !built {
		t.Fatal("first FileTable call should build (cold)")
	}
	if ft.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", ft.Pages())
	}
	if _, built := fs.FileTable(in); built {
		t.Fatal("second FileTable call should be warm")
	}

	// Appending keeps the shared table in sync.
	if _, err := fs.WriteAt(nil, in, 2*BlockSize, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if ft.Pages() != 3 {
		t.Fatalf("pages after append = %d, want 3", ft.Pages())
	}
	disk, _ := in.LookupBlock(2)
	// FTE for page 2 must hold the new block's sector address.
	frag := ft.Fragments()[0]
	if frag.Entry(2).LBA() != disk*SectorsPerBlock {
		t.Fatalf("FTE lba = %d, want %d", frag.Entry(2).LBA(), disk*SectorsPerBlock)
	}

	// Truncation revokes the pages.
	if err := fs.Truncate(nil, in, BlockSize); err != nil {
		t.Fatal(err)
	}
	if ft.Pages() != 1 {
		t.Fatalf("pages after truncate = %d, want 1", ft.Pages())
	}
}

func TestEvictInodeColdReload(t *testing.T) {
	fs, _ := newFS(t)
	in, _ := fs.Create(nil, "/f", 0o644, Root)
	if _, err := fs.WriteAt(nil, in, 0, []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	if err := fs.EvictInode(nil, in.Ino); err != nil {
		t.Fatal(err)
	}
	in2, err := fs.Lookup(nil, "/f", Root)
	if err != nil {
		t.Fatal(err)
	}
	if in2 == in {
		t.Fatal("inode not evicted")
	}
	got := make([]byte, 10)
	if _, err := fs.ReadAt(nil, in2, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist me" {
		t.Fatalf("got %q", got)
	}
	if in2.HasFileTable() {
		t.Fatal("evicted inode kept a file table")
	}
}

func TestNoSpace(t *testing.T) {
	st := storage.NewBytes(2 << 20) // 2 MiB: tiny
	bio := &Direct{St: st}
	opt := DefaultOptions(2<<20, 1)
	opt.Inodes = 64
	opt.JournalBlocks = 16
	if err := Mkfs(bio, opt); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(nil, bio, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := fs.Create(nil, "/big", 0o644, Root)
	huge := make([]byte, 4<<20)
	if _, err := fs.WriteAt(nil, in, 0, huge); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Failed allocation must not corrupt the fs.
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkNonEmptyDir(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.Mkdir(nil, "/d", 0o755, Root); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(nil, "/d/f", 0o644, Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(nil, "/d", Root); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Unlink(nil, "/d/f", Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(nil, "/d", Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(nil); err != nil {
		t.Fatal(err)
	}
}
