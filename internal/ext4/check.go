package ext4

import (
	"fmt"

	"repro/internal/sim"
)

// Check verifies file-system invariants, fsck-style. It walks the
// directory tree from the root, recomputes block usage from every
// reachable inode's extents (plus metadata and pending frees), and
// compares against the allocation bitmap. Used by tests, including
// crash-recovery tests after journal replay.
func (fs *FS) Check(p *sim.Proc) error {
	used := make([]bool, fs.sb.BlockCount)
	for b := int64(0); b < fs.sb.DataStart; b++ {
		used[b] = true
	}
	claim := func(start, count int64, what string) error {
		for i := int64(0); i < count; i++ {
			b := start + i
			if b < fs.sb.DataStart || b >= fs.sb.BlockCount {
				return fmt.Errorf("%w: %s references block %d outside data area", ErrBadFS, what, b)
			}
			if used[b] {
				return fmt.Errorf("%w: block %d doubly referenced (%s)", ErrBadFS, b, what)
			}
			used[b] = true
		}
		return nil
	}

	// Walk the tree.
	seen := make(map[uint32]bool)
	var walk func(ino uint32) error
	walk = func(ino uint32) error {
		if seen[ino] {
			return fmt.Errorf("%w: inode %d reached twice", ErrBadFS, ino)
		}
		seen[ino] = true
		in, err := fs.GetInode(p, ino)
		if err != nil {
			return fmt.Errorf("inode %d: %w", ino, err)
		}
		what := fmt.Sprintf("inode %d", ino)
		var covered int64
		for _, e := range in.Extents {
			if int64(e.FileBlock) != covered {
				return fmt.Errorf("%w: %s extent gap at file block %d", ErrBadFS, what, covered)
			}
			covered += int64(e.Count)
			if err := claim(int64(e.Start), int64(e.Count), what); err != nil {
				return err
			}
		}
		if in.Blocks() > covered {
			return fmt.Errorf("%w: %s size %d exceeds %d allocated blocks", ErrBadFS, what, in.Size, covered)
		}
		for _, cb := range in.chainBlocks {
			if err := claim(int64(cb), 1, what+" chain"); err != nil {
				return err
			}
		}
		if in.IsDir() {
			entries, err := fs.ReadDir(p, in)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if e.Ino == 0 || e.Ino > uint32(fs.sb.InodeCount) {
					return fmt.Errorf("%w: dir %d entry %q -> bad inode %d", ErrBadFS, ino, e.Name, e.Ino)
				}
				if err := walk(e.Ino); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(RootIno); err != nil {
		return err
	}

	// Blocks freed but not yet reusable are still marked in the
	// bitmap by design.
	for _, e := range fs.pendingFree {
		for i := int64(0); i < int64(e.Count); i++ {
			b := int64(e.Start) + i
			if used[b] {
				return fmt.Errorf("%w: pending-free block %d still referenced", ErrBadFS, b)
			}
			used[b] = true
		}
	}

	for b := int64(0); b < fs.sb.BlockCount; b++ {
		if used[b] != fs.testBit(b) {
			return fmt.Errorf("%w: bitmap mismatch at block %d (bitmap=%v, actual=%v)",
				ErrBadFS, b, fs.testBit(b), used[b])
		}
	}
	return nil
}
