package bypassd

// One benchmark per table and figure of the paper's evaluation, plus
// the DESIGN.md ablations. Each benchmark drives the corresponding
// harness in internal/experiments at reduced (Quick) scale so the
// whole suite completes in minutes; run cmd/bypassd-bench -full for
// paper-scale sweeps. Benchmarks report the experiment's headline
// metric alongside Go's usual timings.

import (
	"flag"
	"testing"

	"repro/internal/experiments"
)

// benchParallel fans each experiment's sweep cells out to this many
// goroutines (the harness renders in sweep order, so results are
// unchanged — only wall time moves). Named bench.parallel because the
// testing package owns -parallel.
var benchParallel = flag.Int("bench.parallel", 1, "sweep-cell parallelism for experiment benchmarks")

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(experiments.Options{Quick: true, Seed: int64(i) + 1, Parallelism: *benchParallel})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

// Tables.
func BenchmarkTable1Breakdown(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkTable4IOMMU(b *testing.B)     { benchExperiment(b, "T4") }
func BenchmarkTable5Fmap(b *testing.B)      { benchExperiment(b, "T5") }

// Figures.
func BenchmarkFig5ATS(b *testing.B)         { benchExperiment(b, "F5") }
func BenchmarkFig6LatBW(b *testing.B)       { benchExperiment(b, "F6") }
func BenchmarkFig7Breakdown(b *testing.B)   { benchExperiment(b, "F7") }
func BenchmarkFig8Sensitivity(b *testing.B) { benchExperiment(b, "F8") }
func BenchmarkFig9Scaling(b *testing.B)     { benchExperiment(b, "F9") }
func BenchmarkFig10Sharing(b *testing.B)    { benchExperiment(b, "F10") }
func BenchmarkFig11Fairness(b *testing.B)   { benchExperiment(b, "F11") }
func BenchmarkFig12Revocation(b *testing.B) { benchExperiment(b, "F12") }
func BenchmarkFig13WiredTiger(b *testing.B) { benchExperiment(b, "F13") }
func BenchmarkFig14CacheSweep(b *testing.B) { benchExperiment(b, "F14") }
func BenchmarkFig15BPFKV(b *testing.B)      { benchExperiment(b, "F15") }
func BenchmarkFig16KVell(b *testing.B)      { benchExperiment(b, "F16") }

// Ablations.
func BenchmarkAblationIOTLB(b *testing.B)          { benchExperiment(b, "A1") }
func BenchmarkAblationQueuePerThread(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkAblationAppend(b *testing.B)         { benchExperiment(b, "A3") }
func BenchmarkAblationWriteOverlap(b *testing.B)   { benchExperiment(b, "A4") }
func BenchmarkExtNonBlockingWrites(b *testing.B)   { benchExperiment(b, "A5") }
func BenchmarkExtExtentTableWalker(b *testing.B)   { benchExperiment(b, "A6") }

// Supplemental.
func BenchmarkSupDeviceGenerality(b *testing.B) { benchExperiment(b, "S1") }
func BenchmarkSupVMSupport(b *testing.B)        { benchExperiment(b, "S2") }

// BenchmarkDirect4KRead measures the headline data point — one 4 KiB
// BypassD read — end to end through the public API, reporting virtual
// latency per op.
func BenchmarkDirect4KRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(1 << 30)
		if err != nil {
			b.Fatal(err)
		}
		var virtual Time
		Run(sys, "bench", func(p *Proc) {
			pr := sys.NewProcess(RootCred)
			fd, err := pr.Create(p, "/bench", 0o644)
			if err != nil {
				b.Error(err)
				return
			}
			if err := pr.Fallocate(p, fd, 1<<20); err != nil {
				b.Error(err)
				return
			}
			_ = pr.Fsync(p, fd)
			_ = pr.Close(p, fd)
			io, err := sys.NewFileIO(p, sys.NewProcess(RootCred), EngineBypassD)
			if err != nil {
				b.Error(err)
				return
			}
			f, _ := io.Open(p, "/bench", false)
			buf := make([]byte, 4096)
			_, _ = io.Pread(p, f, buf, 0) // warm
			start := p.Now()
			if _, err := io.Pread(p, f, buf, 4096); err != nil {
				b.Error(err)
			}
			virtual = p.Now() - start
		})
		sys.Sim.Shutdown()
		b.ReportMetric(float64(virtual), "virtual-ns/op")
	}
}
