package bypassd

// One benchmark per table and figure of the paper's evaluation, plus
// the DESIGN.md ablations. Each benchmark drives the corresponding
// harness in internal/experiments at reduced (Quick) scale so the
// whole suite completes in minutes; run cmd/bypassd-bench -full for
// paper-scale sweeps. Benchmarks report the experiment's headline
// metric alongside Go's usual timings.

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/frontend"
	"repro/internal/tenants"
	"repro/internal/trace"
)

// benchParallel fans each experiment's sweep cells out to this many
// goroutines (the harness renders in sweep order, so results are
// unchanged — only wall time moves). Named bench.parallel because the
// testing package owns -parallel.
var benchParallel = flag.Int("bench.parallel", 1, "sweep-cell parallelism for experiment benchmarks")

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(experiments.Options{Quick: true, Seed: int64(i) + 1, Parallelism: *benchParallel})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

// Tables.
func BenchmarkTable1Breakdown(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkTable4IOMMU(b *testing.B)     { benchExperiment(b, "T4") }
func BenchmarkTable5Fmap(b *testing.B)      { benchExperiment(b, "T5") }

// Figures.
func BenchmarkFig5ATS(b *testing.B)         { benchExperiment(b, "F5") }
func BenchmarkFig6LatBW(b *testing.B)       { benchExperiment(b, "F6") }
func BenchmarkFig7Breakdown(b *testing.B)   { benchExperiment(b, "F7") }
func BenchmarkFig8Sensitivity(b *testing.B) { benchExperiment(b, "F8") }
func BenchmarkFig9Scaling(b *testing.B)     { benchExperiment(b, "F9") }
func BenchmarkFig10Sharing(b *testing.B)    { benchExperiment(b, "F10") }
func BenchmarkFig11Fairness(b *testing.B)   { benchExperiment(b, "F11") }
func BenchmarkFig12Revocation(b *testing.B) { benchExperiment(b, "F12") }
func BenchmarkFig13WiredTiger(b *testing.B) { benchExperiment(b, "F13") }
func BenchmarkFig14CacheSweep(b *testing.B) { benchExperiment(b, "F14") }
func BenchmarkFig15BPFKV(b *testing.B)      { benchExperiment(b, "F15") }
func BenchmarkFig16KVell(b *testing.B)      { benchExperiment(b, "F16") }

// Ablations.
func BenchmarkAblationIOTLB(b *testing.B)          { benchExperiment(b, "A1") }
func BenchmarkAblationQueuePerThread(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkAblationAppend(b *testing.B)         { benchExperiment(b, "A3") }
func BenchmarkAblationWriteOverlap(b *testing.B)   { benchExperiment(b, "A4") }
func BenchmarkExtNonBlockingWrites(b *testing.B)   { benchExperiment(b, "A5") }
func BenchmarkExtExtentTableWalker(b *testing.B)   { benchExperiment(b, "A6") }

// Supplemental.
func BenchmarkSupDeviceGenerality(b *testing.B) { benchExperiment(b, "S1") }
func BenchmarkSupVMSupport(b *testing.B)        { benchExperiment(b, "S2") }

// BenchmarkDirect4KRead measures the headline data point — one warm
// 4 KiB BypassD read — end to end through the public API, reporting
// virtual latency per op. The system boots once outside the timed
// region: this is the steady-state cost of a read, the number the
// zero-alloc work targets (see BenchmarkBootDirect4KRead for the
// boot-inclusive variant).
func BenchmarkDirect4KRead(b *testing.B) {
	sys, io, fd, buf := bootDirect4K(b)
	defer sys.Close()
	var virtual Time
	read := func(p *Proc) {
		start := p.Now()
		if _, err := io.Pread(p, fd, buf, 4096); err != nil {
			b.Error(err)
		}
		virtual += p.Now() - start
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(sys, "bench", read)
	}
	b.StopTimer()
	b.ReportMetric(float64(virtual)/float64(b.N), "virtual-ns/op")
}

// BenchmarkBootDirect4KRead is the historical form of the headline
// benchmark: boot, create, fallocate, and one warm read per op. It
// tracks boot-path cost (ext4 Mkfs/Mount, page-table and queue
// setup), which the steady-state benchmark above deliberately hides.
func BenchmarkBootDirect4KRead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		direct4KRead(b)
	}
}

// throughputReads is the batch size of one throughput-benchmark op:
// enough reads per Run() that the spawn/drain cost of entering the
// simulation is amortized the way a real experiment amortizes it.
const throughputReads = 64

// benchSimThroughput drives batches of warm 4 KiB BypassD reads on one
// booted system and reports the simulator's event-dispatch rate —
// events/sec of host wall clock — alongside ns/op. traceOn measures
// the observability plane's overhead on the same workload.
func benchSimThroughput(b *testing.B, traceOn bool) {
	sys, io, fd, buf := bootDirect4K(b)
	defer sys.Close()
	if traceOn {
		// NewFileIO decorates with tracedIO only when the machine has
		// a tracer, so the traced handle must be created after this.
		sys.M.EnableTrace(trace.NewTracer("bench"))
		Run(sys, "boot-traced", func(p *Proc) {
			tio, err := sys.NewFileIO(p, sys.NewProcess(RootCred), EngineBypassD)
			if err != nil {
				b.Error(err)
				return
			}
			io = tio
			fd, _ = io.Open(p, "/bench", false)
			_, _ = io.Pread(p, fd, buf, 0) // warm
		})
	}
	var virtual Time
	batch := func(p *Proc) {
		start := p.Now()
		for j := 0; j < throughputReads; j++ {
			if _, err := io.Pread(p, fd, buf, 4096); err != nil {
				b.Error(err)
				return
			}
		}
		virtual += p.Now() - start
	}
	b.ReportAllocs()
	b.ResetTimer()
	events := sys.Sim.Processed()
	for i := 0; i < b.N; i++ {
		Run(sys, "storm", batch)
	}
	b.StopTimer()
	events = sys.Sim.Processed() - events
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(virtual)/float64(b.N), "virtual-ns/op")
}

// BenchmarkSimThroughputDirectRead is the dispatch-rate gate: batches
// of steady-state BypassD reads, no tracing.
func BenchmarkSimThroughputDirectRead(b *testing.B) { benchSimThroughput(b, false) }

// BenchmarkSimThroughputTraceOn is the same workload with the trace
// plane recording every I/O span.
func BenchmarkSimThroughputTraceOn(b *testing.B) { benchSimThroughput(b, true) }

// BenchmarkSimThroughputTenantStorm measures dispatch rate under the
// multi-tenant QoS plane: competing open-loop tenants on a weighted
// arbiter, boot included — the simulator's worst-case event mix
// (timers, arbitration, cross-tenant interleaving).
func BenchmarkSimThroughputTenantStorm(b *testing.B) {
	sc := tenants.NoisyNeighbor("wrr", 2, 200, 200)
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		_, ev, err := tenants.RunCounted(int64(i)+1, sc)
		if err != nil {
			b.Fatal(err)
		}
		events += ev
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFrontendThroughput measures the service tier end to end:
// a token-paced fleet at 2x saturation multiplexing its user
// population over the worker pool against per-device kvell stores,
// boot and store build included. Events/sec is the regression-gated
// number — the tier's fairness queues, admission bookkeeping, and
// backend round-trips all sit on the event path.
func BenchmarkFrontendThroughput(b *testing.B) {
	fl := frontend.ServiceFleet(frontend.AdmitToken, 2.0, 2, 8, 4000, 8000)
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		_, ev, err := frontend.RunCountedWorkers(int64(i)+1, fl, 1)
		if err != nil {
			b.Fatal(err)
		}
		events += ev
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSimThroughputSharded is the TenantStorm workload spread
// over a four-SSD topology: one victim+hog pair per device, each
// device's event stream on its own shard merged by the canonical
// (at, shard, seq) key. The /w1 and /w4 sub-benchmarks run the same
// scenario's traffic phase on one and four host workers of the
// conservative epoch engine; their results are byte-identical (the
// worker-invariance tests pin this), so the pair isolates the
// parallel speedup. On a multi-core host w4 is the headline number;
// the w4/w1 ratio is gated by cmd/benchjson when the host has the
// cores to express it.
func BenchmarkSimThroughputSharded(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			sc := tenants.ScaleOut(4, 400, 400)
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				_, ev, err := tenants.RunCountedWorkers(int64(i)+1, sc, workers)
				if err != nil {
					b.Fatal(err)
				}
				events += ev
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
