// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark numbers can be committed and
// diffed across PRs (see `make bench-json`, which writes
// BENCH_PR4.json).
//
//	go test -bench 'Fig6LatBW' -benchmem -run '^$' . | benchjson -o out.json
//	benchjson -baseline old-bench.txt -o out.json < new-bench.txt
//
// Every metric pair the testing package prints is kept, including
// custom b.ReportMetric units such as virtual-ns/op. The optional
// -baseline flag parses a second bench-output file and embeds it under
// "baseline" so one committed file carries the before/after pair.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchLine is one parsed Benchmark result row.
type benchLine struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchRun is a whole `go test -bench` invocation.
type benchRun struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchLine `json:"benchmarks"`
}

// output is the document benchjson writes.
type output struct {
	GeneratedBy string    `json:"generated_by"`
	GoVersion   string    `json:"go_version,omitempty"`
	Run         benchRun  `json:"run"`
	Baseline    *benchRun `json:"baseline,omitempty"`
}

// parseBench reads `go test -bench` output, keeping the header
// key: value lines and every Benchmark row.
func parseBench(r io.Reader) (benchRun, error) {
	var run benchRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			bl, ok := parseBenchLine(line)
			if !ok {
				continue // a benchmark name echoed without results
			}
			run.Benchmarks = append(run.Benchmarks, bl)
		}
	}
	if err := sc.Err(); err != nil {
		return run, err
	}
	if len(run.Benchmarks) == 0 {
		return run, fmt.Errorf("no Benchmark result lines found")
	}
	return run, nil
}

// parseBenchLine parses one result row:
//
//	BenchmarkFig6LatBW-8   18   64613020 ns/op   9145056 B/op   28489 allocs/op
func parseBenchLine(line string) (benchLine, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchLine{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchLine{}, false
	}
	bl := benchLine{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchLine{}, false
		}
		bl.Metrics[fields[i+1]] = v
	}
	return bl, true
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		outPath  = flag.String("o", "", "write JSON here instead of stdout")
		baseline = flag.String("baseline", "", "optional prior `go test -bench` text output to embed under \"baseline\"")
	)
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse stdin: %v\n", err)
		return 1
	}
	doc := output{GeneratedBy: "make bench-json", GoVersion: runtime.Version(), Run: cur}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		base, err := parseBench(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", *baseline, err)
			return 1
		}
		doc.Baseline = &base
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *outPath == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*outPath, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}
