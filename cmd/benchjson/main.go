// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark numbers can be committed and
// diffed across PRs (see `make bench-json`, which writes
// BENCH_PR4.json).
//
//	go test -bench 'Fig6LatBW' -benchmem -run '^$' . | benchjson -o out.json
//	benchjson -baseline old-bench.txt -o out.json < new-bench.txt
//	go test -bench . -run '^$' . | benchjson -check BENCH_PR8.json
//
// Every metric pair the testing package prints is kept, including
// custom b.ReportMetric units such as virtual-ns/op. When a benchmark
// reports both ns/op and virtual-ns/op, the derived metric
// wall-ns-per-virtual-ns (host nanoseconds spent per simulated
// nanosecond — the simulator's slowdown factor) is added; when it
// reports events/sec, wall-ns-per-event (its reciprocal) is added so
// dispatch cost diffs in the same units as ns/op.
//
// The optional -baseline flag parses a second bench-output file and
// embeds it under "baseline" so one committed file carries the
// before/after pair.
//
// -check compares the parsed run against a committed snapshot JSON
// and exits nonzero if any benchmark present in both regressed its
// ns/op by more than -tolerance (default 0.25, i.e. fail only when
// more than 25% slower — host timings on shared CI machines are
// noisy, so small drifts must not fail the gate). Repeated lines for
// one benchmark (go test -count N) collapse to the minimum ns/op
// before comparison. Benchmarks missing from either side are
// reported but do not fail the check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchLine is one parsed Benchmark result row.
type benchLine struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchRun is a whole `go test -bench` invocation.
type benchRun struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchLine `json:"benchmarks"`
}

// output is the document benchjson writes.
type output struct {
	GeneratedBy string    `json:"generated_by"`
	GoVersion   string    `json:"go_version,omitempty"`
	Run         benchRun  `json:"run"`
	Baseline    *benchRun `json:"baseline,omitempty"`
}

// parseBench reads `go test -bench` output, keeping the header
// key: value lines and every Benchmark row.
func parseBench(r io.Reader) (benchRun, error) {
	var run benchRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			bl, ok := parseBenchLine(line)
			if !ok {
				continue // a benchmark name echoed without results
			}
			run.Benchmarks = append(run.Benchmarks, bl)
		}
	}
	if err := sc.Err(); err != nil {
		return run, err
	}
	if len(run.Benchmarks) == 0 {
		return run, fmt.Errorf("no Benchmark result lines found")
	}
	return run, nil
}

// parseBenchLine parses one result row:
//
//	BenchmarkFig6LatBW-8   18   64613020 ns/op   9145056 B/op   28489 allocs/op
func parseBenchLine(line string) (benchLine, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchLine{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchLine{}, false
	}
	bl := benchLine{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchLine{}, false
		}
		bl.Metrics[fields[i+1]] = v
	}
	// Derived: how many host nanoseconds one simulated nanosecond
	// costs. The throughput work drives this down; the snapshot
	// trajectory makes the progress visible.
	if wall, ok := bl.Metrics["ns/op"]; ok {
		if virt, ok := bl.Metrics["virtual-ns/op"]; ok && virt > 0 {
			bl.Metrics["wall-ns-per-virtual-ns"] = wall / virt
		}
	}
	// Derived: host nanoseconds per dispatched simulator event — the
	// reciprocal of events/sec, in units that diff cleanly against
	// ns/op. This is the number the parallel dispatcher moves: more
	// workers, fewer wall-ns per event, same events.
	if eps, ok := bl.Metrics["events/sec"]; ok && eps > 0 {
		bl.Metrics["wall-ns-per-event"] = 1e9 / eps
	}
	return bl, true
}

// checkSpeedup enforces a parallel-speedup floor between two
// benchmarks of one run: spec is "numerator:denominator:min", e.g.
// "SimThroughputSharded/w4:SimThroughputSharded/w1:2.5". Speedup is
// measured on events/sec when both sides report it (ns/op otherwise),
// with min-ns/op / max-events-sec over repeated lines. The assertion
// only means something when the host has cores for the workers to
// land on, so on hosts with fewer than minCores CPUs the check prints
// a notice and passes vacuously — the determinism gates still run
// there; the speedup gate is for multi-core CI and dev machines.
func checkSpeedup(w io.Writer, cur benchRun, spec string, minCores int) int {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		fmt.Fprintf(w, "  SKIP  -speedup %q: want numerator:denominator:min\n", spec)
		return 1
	}
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		fmt.Fprintf(w, "  SKIP  -speedup %q: bad minimum: %v\n", spec, err)
		return 1
	}
	if n := runtime.NumCPU(); n < minCores {
		fmt.Fprintf(w, "  SKIP  speedup %s vs %s: host has %d CPU(s), need >= %d to express parallel speedup; gate passes vacuously\n",
			parts[0], parts[1], n, minCores)
		return 0
	}
	pick := func(name string) (benchLine, bool) {
		var best benchLine
		found := false
		for _, b := range cur.Benchmarks {
			if b.Name != name {
				continue
			}
			if !found || b.Metrics["ns/op"] < best.Metrics["ns/op"] {
				best = b
			}
			found = true
		}
		return best, found
	}
	num, okN := pick(parts[0])
	den, okD := pick(parts[1])
	if !okN || !okD {
		fmt.Fprintf(w, "  FAIL  speedup %s vs %s: benchmark missing from run\n", parts[0], parts[1])
		return 1
	}
	var ratio float64
	basis := "events/sec"
	if ne, de := num.Metrics["events/sec"], den.Metrics["events/sec"]; ne > 0 && de > 0 {
		ratio = ne / de
	} else if nn, dn := num.Metrics["ns/op"], den.Metrics["ns/op"]; nn > 0 && dn > 0 {
		basis = "ns/op"
		ratio = dn / nn
	} else {
		fmt.Fprintf(w, "  FAIL  speedup %s vs %s: no comparable metric\n", parts[0], parts[1])
		return 1
	}
	status := "ok"
	fails := 0
	if ratio < min {
		status = "FAIL"
		fails = 1
	}
	fmt.Fprintf(w, "  %-5s speedup %s vs %s: %.2fx on %s (floor %.2fx)\n",
		status, parts[0], parts[1], ratio, basis, min)
	return fails
}

// checkAgainst compares cur to the committed snapshot, enforcing the
// ns/op tolerance. When the run carries repeated lines for one
// benchmark (go test -count N), the minimum ns/op wins — min over
// repetitions is the standard noise-robust estimator, so a loaded
// host needs every repetition to be slow before the gate trips. It
// returns the number of failures and prints one line per benchmark
// to w.
func checkAgainst(w io.Writer, cur benchRun, snap output, tolerance float64) int {
	snapshot := map[string]benchLine{}
	for _, b := range snap.Run.Benchmarks {
		snapshot[b.Name] = b
	}
	best := map[string]benchLine{}
	var order []string
	for _, b := range cur.Benchmarks {
		prev, ok := best[b.Name]
		if !ok {
			order = append(order, b.Name)
		}
		if !ok || b.Metrics["ns/op"] < prev.Metrics["ns/op"] {
			best[b.Name] = b
		}
	}
	failures := 0
	seen := map[string]bool{}
	for _, name := range order {
		b := best[name]
		seen[b.Name] = true
		base, ok := snapshot[b.Name]
		if !ok {
			fmt.Fprintf(w, "  NEW   %-28s %.0f ns/op (not in snapshot)\n", b.Name, b.Metrics["ns/op"])
			continue
		}
		now, baseNs := b.Metrics["ns/op"], base.Metrics["ns/op"]
		if baseNs <= 0 {
			continue
		}
		ratio := now / baseNs
		status := "ok"
		if ratio > 1+tolerance {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "  %-5s %-28s %.0f -> %.0f ns/op (%+.1f%%, tolerance %+.0f%%)\n",
			status, b.Name, baseNs, now, 100*(ratio-1), 100*tolerance)
	}
	for _, b := range snap.Run.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "  GONE  %-28s in snapshot but not in this run\n", b.Name)
		}
	}
	return failures
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		outPath   = flag.String("o", "", "write JSON here instead of stdout")
		baseline  = flag.String("baseline", "", "optional prior `go test -bench` text output to embed under \"baseline\"")
		checkPath = flag.String("check", "", "committed snapshot JSON to gate ns/op against; exits 1 on regression beyond -tolerance")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression in -check mode")
		speedup   = flag.String("speedup", "", "in -check mode, also enforce 'numerator:denominator:min' parallel speedup between two benchmarks of this run (skipped below -speedup-cores host CPUs)")
		minCores  = flag.Int("speedup-cores", 4, "host CPUs required before the -speedup floor is enforced rather than skipped")
	)
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse stdin: %v\n", err)
		return 1
	}
	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		var snap output
		if err := json.Unmarshal(data, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", *checkPath, err)
			return 1
		}
		fmt.Printf("benchjson: checking against %s\n", *checkPath)
		n := checkAgainst(os.Stdout, cur, snap, *tolerance)
		if *speedup != "" {
			n += checkSpeedup(os.Stdout, cur, *speedup, *minCores)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond tolerance\n", n)
			return 1
		}
		return 0
	}
	doc := output{GeneratedBy: "make bench-json", GoVersion: runtime.Version(), Run: cur}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		base, err := parseBench(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", *baseline, err)
			return 1
		}
		doc.Baseline = &base
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *outPath == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*outPath, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}
