// tracecheck validates a Chrome trace-event JSON file produced by
// bypassd-bench -trace. It is the CI gate behind `make trace-smoke`:
// it proves the file is well-formed JSON in the trace-event container
// format, that every event is one of the two phases the tracer emits
// ("X" complete spans, "M" metadata), and that spans carry sane
// timestamps. Exit status is non-zero on any violation so the target
// fails loudly.
//
// Usage: tracecheck [-min N] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Pid  *int            `json:"pid"`
	Tid  json.RawMessage `json:"tid"`
	Args json.RawMessage `json:"args"`
}

func main() {
	minSpans := flag.Int("min", 1, "minimum number of span (ph=X) events required")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracecheck [-min N] trace.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fatalf("%s: not valid trace-event JSON: %v", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		fatalf("%s: traceEvents array is missing or empty", path)
	}

	var spans, meta int
	for i, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Name == "" {
				fatalf("%s: event %d: span has no name", path, i)
			}
			if e.Ts == nil || *e.Ts < 0 {
				fatalf("%s: event %d (%s): missing or negative ts", path, i, e.Name)
			}
			if e.Dur == nil || *e.Dur < 0 {
				fatalf("%s: event %d (%s): missing or negative dur", path, i, e.Name)
			}
			if e.Pid == nil {
				fatalf("%s: event %d (%s): span has no pid", path, i, e.Name)
			}
		case "M":
			meta++
			if e.Name != "process_name" && e.Name != "thread_name" {
				fatalf("%s: event %d: unexpected metadata %q", path, i, e.Name)
			}
			if len(e.Args) == 0 {
				fatalf("%s: event %d (%s): metadata has no args", path, i, e.Name)
			}
		default:
			fatalf("%s: event %d: unexpected phase %q (tracer only emits X and M)", path, i, e.Ph)
		}
	}
	if spans < *minSpans {
		fatalf("%s: only %d span events, want at least %d", path, spans, *minSpans)
	}
	fmt.Printf("tracecheck: %s ok (%d spans, %d metadata events)\n", path, spans, meta)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
