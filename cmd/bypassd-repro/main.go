// Command bypassd-repro replays one table cell of one experiment at
// its exact recorded seed — the anomaly-reproduction half of the
// statistical rigor plane. Given a cell spec (the strings the
// statistical gates print when they fail, or hand-written from any
// report table), it re-runs just that experiment, selects the pinned
// rows, and attaches the evidence a debugging session wants: the
// derived workload seed, trace spans, the metrics registry, and fault
// counters.
//
//	bypassd-repro 'T7:hogs=8,victim=bypassd,arbiter=wrr@seed=1,trial=3'
//	bypassd-repro -metrics -trace t.json 'F9:threads=16,engine=io_uring@seed=1'
//	bypassd-repro -gates              # run every statistical gate
//	bypassd-repro -gates t7-arbiter-p99
//
// Spec grammar: ID[:col=value,...][@seed=N,trial=K,trials=N,faults=P,full]
// — column keys spell spaces as '_' and drop unit suffixes
// ("block_size=4KB" pins the "block size (…)" column). trial=K
// replays the k-th trial of a multi-trial run at its derived seed;
// trials=N re-runs the whole N-trial aggregation, CI columns and all.
//
// Matched rows print to stdout and are byte-identical at any -j; all
// progress goes to stderr, so output can be diffed across runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gates    = flag.Bool("gates", false, "run the statistical gates (all, or those named as arguments)")
		parallel = flag.Int("j", 1, "worker count for sweep cells and trials; 0 = GOMAXPROCS")
		seed     = flag.Int64("seed", 1, "base seed for -gates runs (specs carry their own)")
		trials   = flag.Int("trials", 5, "trial count for -gates runs (minimum 5)")
		full     = flag.Bool("full", false, "paper-scale workloads for -gates runs (specs carry their own)")
		metricsF = flag.Bool("metrics", false, "print the unified metrics registry after the replay")
		traceOut = flag.String("trace", "", "write per-request spans to this file (Chrome trace-event JSON)")
	)
	flag.Parse()

	if *gates {
		return runGates(flag.Args(), experiments.Options{
			Quick: !*full, Seed: *seed, Trials: *trials, Parallelism: *parallel,
		})
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bypassd-repro [flags] 'ID[:col=value,...][@seed=N,trial=K,...]'  (or -gates)")
		return 2
	}
	return runSpec(flag.Arg(0), *parallel, *metricsF, *traceOut)
}

func runSpec(arg string, parallel int, metricsF bool, traceOut string) int {
	sp, err := experiments.ParseReproSpec(arg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	if traceOut != "" {
		trace.Activate(trace.Options{})
	}
	if metricsF {
		metrics.Activate()
	}
	fmt.Fprintf(os.Stderr, "== replaying %s\n", sp)
	run, err := experiments.RunRepro(sp, parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	fmt.Printf("spec: %s\n", run.Spec)
	fmt.Printf("derived seed: %d\n\n", run.DerivedSeed)
	// Re-render the matched rows grouped per source table, so a spec
	// that pins one cell prints one row under its original headers.
	var last *stats.Table
	for _, m := range run.Matches {
		if last == nil || last.Title != m.Table {
			if last != nil {
				fmt.Print(last.String())
				fmt.Println()
			}
			last = stats.NewTable(m.Table, m.Headers...)
		}
		row := make([]any, len(m.Row))
		for i, c := range m.Row {
			row[i] = c
		}
		last.AddRow(row...)
	}
	if last != nil {
		fmt.Print(last.String())
	}
	if sp.Faults != "" {
		counts := faults.GlobalCounts()
		sites := make([]string, 0, len(counts))
		for s := range counts {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		fmt.Printf("\nfaults injected: %d (profile %q)\n", faults.GlobalTotal(), sp.Faults)
		for _, s := range sites {
			fmt.Printf("  %-28s %d\n", s, counts[s])
		}
	}
	if metricsF {
		fmt.Println()
		fmt.Print(metrics.Active().Render())
	}
	if traceOut != "" {
		if err := trace.WriteFile(traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", traceOut, err)
			return 1
		}
		ev, dr := trace.CollectedEvents()
		fmt.Fprintf(os.Stderr, "== trace: %d events (%d dropped) -> %s\n", ev, dr, traceOut)
	}
	return 0
}

func runGates(names []string, o experiments.Options) int {
	gates := experiments.Gates()
	if len(names) > 0 {
		gates = gates[:0:0]
		for _, n := range names {
			g, ok := experiments.GateByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown gate %q; have:\n", n)
				for _, g := range experiments.Gates() {
					fmt.Fprintf(os.Stderr, "  %-20s %s\n", g.Name, g.Claim)
				}
				return 2
			}
			gates = append(gates, g)
		}
	}
	failed := 0
	for _, g := range gates {
		res, err := g.Run(o)
		if err != nil {
			fmt.Printf("ERROR %s: %v\n", g.Name, err)
			failed++
			continue
		}
		verdict := "PASS"
		if !res.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %s\n  claim:  %s\n  detail: %s\n", verdict, res.Name, g.Claim, res.Detail)
		for _, spec := range res.Repro {
			fmt.Printf("  repro:  bypassd-repro '%s'\n", spec)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
