// Command bypassd-bench regenerates the paper's tables and figures.
//
//	bypassd-bench                 # run everything, quick scale
//	bypassd-bench -full           # paper-scale sweeps (minutes)
//	bypassd-bench -run F6,F9      # selected experiments
//	bypassd-bench -list           # show the experiment index
//	bypassd-bench -o results.md   # also write a markdown report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		full    = flag.Bool("full", false, "paper-scale sweeps instead of quick mode")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 1, "workload seed")
		out     = flag.String("o", "", "also write the combined report to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *runList == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runList, ",")
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed}
	var combined strings.Builder
	mode := "quick"
	if *full {
		mode = "full (paper-scale)"
	}
	fmt.Fprintf(&combined, "# BypassD reproduction results (%s mode)\n\n", mode)

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			failed++
			continue
		}
		fmt.Printf("== running %s: %s\n", e.ID, e.Title)
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Printf("%s(wall time %.1fs)\n\n", rep.String(), time.Since(start).Seconds())
		combined.WriteString(rep.String())
		combined.WriteString("\n")
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(combined.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
