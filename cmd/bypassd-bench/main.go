// Command bypassd-bench regenerates the paper's tables and figures.
//
//	bypassd-bench                 # run everything, quick scale
//	bypassd-bench -full           # paper-scale sweeps (minutes)
//	bypassd-bench -run F6,F9      # selected experiments
//	bypassd-bench -trials 5       # 5 seeded trials per cell: mean ± 95% CI columns
//	bypassd-bench -j 8            # run experiments and sweep cells in parallel
//	bypassd-bench -workers 4      # host cores per multi-SSD cell (epoch engine)
//	bypassd-bench -list           # show the experiment index
//	bypassd-bench -o results.md   # also write a markdown report
//	bypassd-bench -json run.json  # machine-readable per-experiment results
//	bypassd-bench -faults chaos   # run under a named fault-injection profile
//	bypassd-bench -tenants noisy-neighbor-wrr-8   # run one tenant scenario (builtin or JSON file)
//	bypassd-bench -frontend fleet-token-2.0x      # run one service-tier fleet (builtin or JSON file)
//	bypassd-bench -trace t.json   # per-request spans as Chrome trace-event JSON
//	bypassd-bench -metrics        # print the unified metrics registry after the run
//	bypassd-bench -cpuprofile cpu.pprof -memprofile mem.pprof  # host-level pprof profiles
//
// Reports go to stdout in the experiments' registered order and are
// byte-identical at any -j value; progress and timing lines go to
// stderr so that `bypassd-bench -j 8 > out` equals `-j 1 > out`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/tenants"
	"repro/internal/trace"
)

// jsonResult is one experiment's machine-readable outcome.
type jsonResult struct {
	ID       string  `json:"id"`
	Title    string  `json:"title"`
	Headline string  `json:"headline,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	Err      string  `json:"err,omitempty"`
}

// jsonRun is the -json output: run metadata plus per-experiment rows.
type jsonRun struct {
	Mode        string            `json:"mode"`
	Seed        int64             `json:"seed"`
	Trials      int               `json:"trials,omitempty"`
	Parallelism int               `json:"parallelism"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	TotalWallMS float64           `json:"total_wall_ms"`
	Faults      string            `json:"faults,omitempty"`
	FaultsTotal int64             `json:"faults_total,omitempty"`
	FaultsBy    map[string]int64  `json:"faults_by_site,omitempty"`
	Metrics     *metrics.Snapshot `json:"metrics,omitempty"`
	Results     []jsonResult      `json:"results"`
}

func main() {
	os.Exit(run())
}

// runTenants executes one multi-tenant scenario — a builtin name or a
// JSON config file — and prints its per-tenant table. Like the
// experiment path, the table goes to stdout and is deterministic for
// a fixed seed; progress goes to stderr.
func runTenants(nameOrPath string, seed int64, devices, shardWorkers int, faultsP, out string) int {
	sc, ok := tenants.ByName(nameOrPath)
	if !ok {
		var err error
		sc, err = tenants.Load(nameOrPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-tenants %q: not a builtin scenario (try -list) and %v\n", nameOrPath, err)
			return 1
		}
	}
	if devices > 0 {
		sc.Devices = devices
	}
	if faultsP != "" {
		if err := faults.Activate(faultsP, seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		defer faults.Deactivate()
		fmt.Fprintf(os.Stderr, "== fault profile %q armed (seed %d)\n", faultsP, seed)
	}
	fmt.Fprintf(os.Stderr, "== running tenant scenario %s (%d tenants, %d device(s), arbiter %s, seed %d)\n",
		sc.Name, len(sc.Tenants), sc.NumDevices(), sc.ArbiterName(), seed)
	start := time.Now()
	results, err := tenants.RunWorkers(seed, sc, shardWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", sc.Name, err)
		return 1
	}
	table := tenants.ReportTable(sc, results).String()
	fmt.Print(table)
	fmt.Fprintf(os.Stderr, "== done (wall time %.1fs)\n", time.Since(start).Seconds())
	if out != "" {
		if err := os.WriteFile(out, []byte(table), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			return 1
		}
	}
	return 0
}

// runFrontend executes one service-tier fleet — a builtin name or a
// JSON config file — and prints its per-device table. Like the tenant
// path, the table goes to stdout and is deterministic for a fixed
// seed; progress goes to stderr.
func runFrontend(nameOrPath string, seed int64, devices, shardWorkers int, faultsP, out string) int {
	fl, ok := frontend.ByName(nameOrPath)
	if !ok {
		var err error
		fl, err = frontend.Load(nameOrPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-frontend %q: not a builtin fleet (try -list) and %v\n", nameOrPath, err)
			return 1
		}
	}
	if devices > 0 {
		fl.Devices = devices
	}
	if faultsP != "" {
		if err := faults.Activate(faultsP, seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		defer faults.Deactivate()
		fmt.Fprintf(os.Stderr, "== fault profile %q armed (seed %d)\n", faultsP, seed)
	}
	fmt.Fprintf(os.Stderr, "== running frontend fleet %s (%d users, pool %d, %d device(s), %s admission, seed %d)\n",
		fl.Name, fl.Users, fl.Pool, fl.NumDevices(), fl.PolicyName(), seed)
	start := time.Now()
	res, err := frontend.RunWorkers(seed, fl, shardWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet %s: %v\n", fl.Name, err)
		return 1
	}
	table := frontend.ReportTable(fl, res).String()
	fmt.Print(table)
	fmt.Fprintf(os.Stderr, "== done (wall time %.1fs)\n", time.Since(start).Seconds())
	if out != "" {
		if err := os.WriteFile(out, []byte(table), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			return 1
		}
	}
	return 0
}

// run is main minus os.Exit, so the profile-writing defers installed
// for -cpuprofile/-memprofile always flush before the process ends.
func run() int {
	var (
		runList  = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		full     = flag.Bool("full", false, "paper-scale sweeps instead of quick mode")
		list     = flag.Bool("list", false, "list experiments and exit")
		seed     = flag.Int64("seed", 1, "workload seed")
		trials   = flag.Int("trials", 1, "independent seeded trials per sweep cell; >1 adds mean±95% CI and spread columns")
		parallel = flag.Int("j", 1, "worker count for experiments and sweep cells; 0 = GOMAXPROCS")
		shardW   = flag.Int("workers", 1, "host goroutines per multi-SSD scenario's event shards (conservative epoch engine; results are byte-identical at any value)")
		out      = flag.String("o", "", "also write the combined report to this file")
		jsonOut  = flag.String("json", "", "write machine-readable results to this file")
		faultsP  = flag.String("faults", "", "fault-injection profile name (see -list); empty = disabled")
		tenantsF = flag.String("tenants", "", "run one multi-tenant scenario: a builtin name (see -list) or a JSON config file")
		frontF   = flag.String("frontend", "", "run one service-tier fleet: a builtin name (see -list) or a JSON config file")
		devices  = flag.Int("devices", 0, "SSD count for the topology-aware paths: overrides a -tenants scenario's device count and narrows T9 to one cell; 0 = scenario/experiment default")
		traceOut = flag.String("trace", "", "write per-request spans to this file (Chrome trace-event JSON)")
		metricsF = flag.Bool("metrics", false, "print the unified metrics registry to stdout after the run")
		cpuProf  = flag.String("cpuprofile", "", "write a host CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a host allocation profile (after the run) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuProf, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create %s: %v\n", path, err)
				return
			}
			runtime.GC() // settle live objects so alloc_space dominates
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
			}
			_ = f.Close()
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nfault profiles (-faults):")
		for _, p := range faults.Profiles() {
			fmt.Printf("%-14s %s\n", p.Name, p.Desc)
		}
		fmt.Println("\ntenant scenarios (-tenants):")
		for _, sc := range tenants.Builtins() {
			fmt.Printf("%-24s %d tenants, arbiter %s\n", sc.Name, len(sc.Tenants), sc.ArbiterName())
		}
		fmt.Println("\nfrontend fleets (-frontend):")
		for _, fl := range frontend.Builtins() {
			fmt.Printf("%-24s %d users over pool %d, %s admission, %s backend\n",
				fl.Name, fl.Users, fl.Pool, fl.PolicyName(), fl.Backend)
		}
		return 0
	}

	if *tenantsF != "" {
		return runTenants(*tenantsF, *seed, *devices, *shardW, *faultsP, *out)
	}
	if *frontF != "" {
		return runFrontend(*frontF, *seed, *devices, *shardW, *faultsP, *out)
	}

	if *faultsP != "" {
		if _, ok := faults.ProfileByName(*faultsP); !ok {
			fmt.Fprintf(os.Stderr, "unknown fault profile %q (try -list)\n", *faultsP)
			return 1
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var exps []experiments.Experiment
	bad := 0
	if *runList == "all" {
		exps = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				bad++
				continue
			}
			exps = append(exps, e)
		}
	}

	if *traceOut != "" {
		trace.Activate(trace.Options{})
	}
	if *metricsF {
		metrics.Activate()
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed, Parallelism: workers, Faults: *faultsP, Trials: *trials, Devices: *devices, Workers: *shardW}
	mode := "quick"
	if *full {
		mode = "full (paper-scale)"
	}
	if *trials > 1 {
		fmt.Fprintf(os.Stderr, "== %d trials per cell (trial k at seed %d+k-derived); tables report mean ± 95%% CI\n",
			*trials, *seed)
	}
	if *faultsP != "" {
		fmt.Fprintf(os.Stderr, "== fault profile %q armed (seed %d)\n", *faultsP, *seed)
	}

	runner := &experiments.Runner{
		Parallelism: workers,
		OnStart: func(e experiments.Experiment) {
			fmt.Fprintf(os.Stderr, "== running %s: %s\n", e.ID, e.Title)
		},
		OnDone: func(r experiments.RunResult) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "== %s failed after %.1fs: %v\n", r.Experiment.ID, r.Wall.Seconds(), r.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "== %s done (wall time %.1fs)\n", r.Experiment.ID, r.Wall.Seconds())
		},
	}
	start := time.Now()
	results := runner.Run(exps, opts)
	total := time.Since(start)

	var combined strings.Builder
	fmt.Fprintf(&combined, "# BypassD reproduction results (%s mode)\n\n", mode)
	failed := bad
	for _, r := range results {
		if r.Err != nil {
			failed++
			continue
		}
		fmt.Print(r.Report.String())
		fmt.Println()
		combined.WriteString(r.Report.String())
		combined.WriteString("\n")
	}
	var snap *metrics.Snapshot
	if *metricsF {
		reg := metrics.Active()
		// Fold the fault plane's aggregate counters into the registry so
		// one render covers every subsystem.
		for site, n := range faults.GlobalCounts() {
			reg.Counter("faults_injected_total", "site", site).Add(n)
		}
		fmt.Print(reg.Render())
		fmt.Println()
		s := reg.Snapshot()
		snap = &s
	}
	fmt.Fprintf(os.Stderr, "== total wall time %.1fs (%d experiments, -j %d)\n",
		total.Seconds(), len(results), workers)
	if *traceOut != "" {
		if err := trace.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *traceOut, err)
			failed++
		} else {
			ev, dr := trace.CollectedEvents()
			fmt.Fprintf(os.Stderr, "== trace: %d events (%d dropped) -> %s\n", ev, dr, *traceOut)
		}
	}
	if *faultsP != "" {
		counts := faults.GlobalCounts()
		sites := make([]string, 0, len(counts))
		for s := range counts {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		fmt.Fprintf(os.Stderr, "== injected faults: %d total (profile %q)\n", faults.GlobalTotal(), *faultsP)
		for _, s := range sites {
			fmt.Fprintf(os.Stderr, "==   %-28s %d\n", s, counts[s])
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(combined.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			failed++
		}
	}
	if *jsonOut != "" {
		run := jsonRun{
			Mode:        mode,
			Seed:        *seed,
			Trials:      opts.Trials,
			Parallelism: workers,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			TotalWallMS: float64(total.Microseconds()) / 1000,
		}
		if *faultsP != "" {
			run.Faults = *faultsP
			run.FaultsTotal = faults.GlobalTotal()
			run.FaultsBy = faults.GlobalCounts()
		}
		run.Metrics = snap
		for _, r := range results {
			jr := jsonResult{
				ID:     r.Experiment.ID,
				Title:  r.Experiment.Title,
				WallMS: float64(r.Wall.Microseconds()) / 1000,
			}
			if r.Err != nil {
				jr.Err = r.Err.Error()
			} else {
				jr.Headline = r.Report.Headline()
			}
			run.Results = append(run.Results, jr)
		}
		data, err := json.MarshalIndent(run, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
