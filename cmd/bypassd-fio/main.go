// Command bypassd-fio runs ad-hoc microbenchmarks against any of the
// compared engines, in the spirit of the fio jobs used throughout the
// paper's evaluation.
//
//	bypassd-fio -engine bypassd -bs 4096 -rw randread -threads 4 -ops 1000
//	bypassd-fio -engine sync -rw randwrite -procs   # process per thread
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/sim"
)

func main() {
	var (
		engine  = flag.String("engine", "bypassd", "sync | libaio | io_uring | spdk | bypassd")
		rw      = flag.String("rw", "randread", "randread | randwrite")
		bs      = flag.Int("bs", 4096, "block size in bytes (sector aligned)")
		threads = flag.Int("threads", 1, "worker threads")
		ops     = flag.Int("ops", 500, "operations per thread")
		size    = flag.Int64("filesize", 64<<20, "per-worker file size in bytes")
		procs   = flag.Bool("procs", false, "one process per thread (sharing layout)")
		delay   = flag.Int64("vba-delay", -1, "fixed VBA translation latency in ns (-1 = modelled)")
		seed    = flag.Int64("seed", 1, "offset stream seed")
	)
	flag.Parse()

	write := false
	switch *rw {
	case "randread":
	case "randwrite":
		write = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -rw %q\n", *rw)
		os.Exit(2)
	}

	res, err := fio.Run(fio.Spec{VBAFixedLatency: sim.Time(*delay), Seed: *seed}, []fio.Group{{
		Name:             "job",
		Engine:           core.Engine(*engine),
		Write:            write,
		BS:               *bs,
		Threads:          *threads,
		OpsPerThread:     *ops,
		FileBytes:        *size,
		ProcessPerThread: *procs,
	}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fio: %v\n", err)
		os.Exit(1)
	}
	r := res["job"]
	fmt.Printf("engine=%s rw=%s bs=%d threads=%d procs=%v\n", *engine, *rw, *bs, *threads, *procs)
	fmt.Printf("  ops        %d\n", r.Ops)
	fmt.Printf("  elapsed    %v (virtual)\n", r.Elapsed())
	fmt.Printf("  lat mean   %v\n", r.Lat.Mean())
	fmt.Printf("  lat p50    %v\n", r.Lat.Percentile(50))
	fmt.Printf("  lat p99    %v\n", r.Lat.Percentile(99))
	fmt.Printf("  lat p99.9  %v\n", r.Lat.Percentile(99.9))
	fmt.Printf("  IOPS       %.0f\n", r.IOPS())
	fmt.Printf("  bandwidth  %.1f MB/s\n", r.Bandwidth()/1e6)
}
