// Command bypassd-inspect boots a small system, performs a scripted
// sequence of file operations, and dumps the internal state that the
// BypassD mechanism depends on: the ext4 layout, a file's extent map,
// its shared file table, the attached page-table view, and the IOMMU
// translation of a sample VBA. It is a debugging/teaching tool for
// the architecture.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ext4"
	"repro/internal/iommu"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

func main() {
	size := flag.Int64("filesize", 8<<20, "demo file size in bytes")
	flag.Parse()

	sys, err := core.New(1 << 30)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var failure error
	sys.Sim.Spawn("inspect", func(p *sim.Proc) {
		failure = inspect(p, sys, *size)
	})
	sys.Sim.Run()
	if failure != nil {
		fmt.Fprintln(os.Stderr, failure)
		os.Exit(1)
	}
}

func inspect(p *sim.Proc, sys *core.System, size int64) error {
	sb := sys.M.FS.Super()
	fmt.Println("== ext4 layout (4 KiB blocks)")
	fmt.Printf("  blocks      %d (%d MiB)\n", sb.BlockCount, sb.BlockCount*4096>>20)
	fmt.Printf("  bitmap      [%d, %d)\n", sb.BitmapStart, sb.BitmapStart+sb.BitmapBlocks)
	fmt.Printf("  inode table [%d, %d) (%d inodes)\n", sb.InodeStart, sb.InodeStart+sb.InodeBlocks, sb.InodeCount)
	fmt.Printf("  journal     [%d, %d)\n", sb.JournalStart, sb.JournalStart+sb.JournalBlocks)
	fmt.Printf("  data        [%d, %d)\n", sb.DataStart, sb.BlockCount)

	pr := sys.NewProcess(ext4.Root)
	fd, err := pr.Create(p, "/demo", 0o644)
	if err != nil {
		return err
	}
	if err := pr.Fallocate(p, fd, size); err != nil {
		return err
	}
	if err := pr.Fsync(p, fd); err != nil {
		return err
	}
	if err := pr.Close(p, fd); err != nil {
		return err
	}

	in, err := sys.M.FS.Lookup(p, "/demo", ext4.Root)
	if err != nil {
		return err
	}
	fmt.Printf("\n== inode %d (/demo, %d bytes)\n", in.Ino, in.Size)
	fmt.Printf("  extents: %d\n", len(in.Extents))
	for i, e := range in.Extents {
		if i == 4 {
			fmt.Printf("  ... (%d more)\n", len(in.Extents)-4)
			break
		}
		fmt.Printf("  file blocks [%d,+%d) -> disk blocks [%d,+%d)\n",
			e.FileBlock, e.Count, e.Start, e.Count)
	}

	reader := sys.NewProcess(ext4.Root)
	rfd, base, err := reader.OpenBypass(p, "/demo", false)
	if err != nil {
		return err
	}
	if base == 0 {
		return fmt.Errorf("fmap declined")
	}
	_ = rfd
	ft, _ := sys.M.FS.FileTable(in)
	fmt.Printf("\n== shared file table (cached in the VFS inode)\n")
	fmt.Printf("  pages     %d\n", ft.Pages())
	fmt.Printf("  fragments %d x 2MiB\n", len(ft.Fragments()))
	fmt.Printf("  FTEs      %d (%.1f KiB of page-table memory, %.2f%% of file)\n",
		ft.PTEs(), float64(ft.PTEs()*8)/1024, float64(ft.PTEs()*8)*100/float64(size))

	fmt.Printf("\n== process %d mapping\n", reader.PID)
	fmt.Printf("  PASID %d, VBA base %#x\n", reader.PASID, base)
	w := reader.Table.Walk(base + pagetable.PageSize)
	fmt.Printf("  walk(base+4K): found=%v FT=%v LBA=%d devID=%d effRW=%v\n",
		w.Found, w.Entry.FT(), w.Entry.LBA(), w.Entry.DevID(), w.EffRW)

	r := sys.M.MMU.Translate(iommu.Request{
		PASID: reader.PASID,
		DevID: sys.M.Dev.Config().DevID,
		VBA:   base + 4096,
		Bytes: 8192,
	})
	fmt.Printf("\n== IOMMU translation of VBA %#x (+8KiB)\n", base+4096)
	fmt.Printf("  status %v, latency %v, walks %d\n", r.Status, r.Latency, r.Walks)
	for _, seg := range r.Segments {
		fmt.Printf("  sectors [%d, +%d)\n", seg.Sector, seg.Sectors)
	}

	hits, misses := sys.M.MMU.TLBStats()
	faults, denials := sys.M.MMU.FaultStats()
	fmt.Printf("\n== IOMMU counters: tlb %d/%d hit/miss, %d faults, %d denials\n",
		hits, misses, faults, denials)
	return nil
}
