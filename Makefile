GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzExtentTree FuzzRename

.PHONY: all build test race vet bench fuzz check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage: the experiments package fans sweep cells and whole
# experiments out to goroutines, and the core/kernel stress tests
# exercise the fault plane's global counters from parallel machines.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# fuzz runs each native fuzz target for FUZZTIME (go test -fuzz takes
# exactly one target per invocation, hence the loop).
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		echo "== fuzzing $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/ext4 -run $$t -fuzz "^$$t$$" -fuzztime $(FUZZTIME); \
	done

# check is the default gate: build, vet, full tests, and the race
# detector over the whole tree.
check: build vet test race

clean:
	$(GO) clean ./...
