GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzExtentTree FuzzRename

.PHONY: all build test race vet bench bench-json bench-check fuzz check trace-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage: the experiments package fans sweep cells and whole
# experiments out to goroutines, and the core/kernel stress tests
# exercise the fault plane's global counters from parallel machines.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-json regenerates the committed benchmark snapshot for the
# translation fast path (Fig. 6/9 harnesses plus the headline 4 KiB
# read). Set BASELINE=<old bench output file> to embed a before/after
# pair in the JSON.
bench-json:
	$(GO) test -bench 'Fig6LatBW|Fig9Scaling|Direct4KRead' -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) -o BENCH_PR5.json
	@echo wrote BENCH_PR5.json

# bench-check is the allocation-budget regression gate: the end-to-end
# 4 KiB BypassD read must stay within its allocs/op budget (see
# TestDirect4KReadAllocBudget) with the QoS arbiter on the dispatch
# path, and every arbiter's steady-state grant must stay
# allocation-free (TestArbiterZeroAllocHotPath). Opt-in via
# BENCH_CHECK=1 so ordinary test runs never flake on allocation noise.
bench-check:
	BENCH_CHECK=1 $(GO) test -run TestDirect4KReadAllocBudget -count=1 -v .
	$(GO) test -run TestArbiterZeroAllocHotPath -count=1 -v ./internal/device

# fuzz runs each native fuzz target for FUZZTIME (go test -fuzz takes
# exactly one target per invocation, hence the loop).
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		echo "== fuzzing $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/ext4 -run $$t -fuzz "^$$t$$" -fuzztime $(FUZZTIME); \
	done

# trace-smoke runs one experiment with the trace plane armed and
# validates the emitted Chrome trace-event JSON with cmd/tracecheck:
# the file must parse, contain only X/M phases, and hold real spans.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
		$(GO) build -o $$tmp/bench ./cmd/bypassd-bench; \
		$(GO) build -o $$tmp/tracecheck ./cmd/tracecheck; \
		$$tmp/bench -run T6 -trace $$tmp/trace.json -metrics > $$tmp/out.txt; \
		grep -q '== metrics ==' $$tmp/out.txt; \
		$$tmp/tracecheck -min 100 $$tmp/trace.json

# check is the default gate: build, vet, full tests, the race
# detector over the whole tree, and the allocation-budget gate.
check: build vet test race bench-check

clean:
	$(GO) clean ./...
