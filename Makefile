GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzExtentTree FuzzRename

.PHONY: all build test race vet bench fuzz check trace-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage: the experiments package fans sweep cells and whole
# experiments out to goroutines, and the core/kernel stress tests
# exercise the fault plane's global counters from parallel machines.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# fuzz runs each native fuzz target for FUZZTIME (go test -fuzz takes
# exactly one target per invocation, hence the loop).
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		echo "== fuzzing $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/ext4 -run $$t -fuzz "^$$t$$" -fuzztime $(FUZZTIME); \
	done

# trace-smoke runs one experiment with the trace plane armed and
# validates the emitted Chrome trace-event JSON with cmd/tracecheck:
# the file must parse, contain only X/M phases, and hold real spans.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
		$(GO) build -o $$tmp/bench ./cmd/bypassd-bench; \
		$(GO) build -o $$tmp/tracecheck ./cmd/tracecheck; \
		$$tmp/bench -run T6 -trace $$tmp/trace.json -metrics > $$tmp/out.txt; \
		grep -q '== metrics ==' $$tmp/out.txt; \
		$$tmp/tracecheck -min 100 $$tmp/trace.json

# check is the default gate: build, vet, full tests, and the race
# detector over the whole tree.
check: build vet test race

clean:
	$(GO) clean ./...
