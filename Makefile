GO ?= go

.PHONY: all build test race vet bench check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package is where sweep cells and whole experiments
# fan out to goroutines; run it under the race detector.
race:
	$(GO) test -race ./internal/experiments/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# check is the default gate: build, vet, full tests, and the race
# exercise over the parallel runner.
check: build vet test race

clean:
	$(GO) clean ./...
