GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS := ./internal/ext4:FuzzExtentTree ./internal/ext4:FuzzRename ./internal/experiments:FuzzReproSpec

.PHONY: all build test race vet bench bench-json bench-check parallel-equivalence profile fuzz check trace-smoke repro-smoke topology-smoke frontend-smoke clean

# The benchmarks the committed snapshot and the throughput gate track:
# the Fig. 6/9 harnesses, the headline 4 KiB read (steady-state and
# boot-inclusive), the simulated-IOPS throughput family, and the
# frontend service tier.
GATE_BENCH := Fig6LatBW|Fig9Scaling|Direct4KRead|BootDirect4KRead|SimThroughput|FrontendThroughput

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage: the experiments package fans sweep cells and whole
# experiments out to goroutines, and the core/kernel stress tests
# exercise the fault plane's global counters from parallel machines.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-json regenerates the committed benchmark snapshot: the
# Fig. 6/9 harnesses, the headline 4 KiB read, the throughput family
# (single-queue, traced, tenant storm, and the four-SSD sharded core
# at 1 and 4 workers), and the frontend service tier, with events/sec,
# wall-ns-per-event, and wall-ns-per-virtual-ns metrics. Set
# BASELINE=<old bench output file> to embed a before/after pair.
bench-json:
	$(GO) test -bench '$(GATE_BENCH)' -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) -o BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# bench-check is the performance regression gate, in three parts:
#  1. allocation budgets — a steady-state 4 KiB BypassD read must stay
#     within single-digit allocs/op and the boot-inclusive path within
#     its budget (Test*AllocBudget), with every arbiter's steady-state
#     grant allocation-free (TestArbiterZeroAllocHotPath);
#  2. throughput — the gated benchmarks must stay within 25% of the
#     committed BENCH_PR10.json ns/op (benchjson -check, which takes
#     the min over -count 3 repetitions; min-of-N plus the tolerance
#     absorbs host noise, so only real regressions fail);
#  3. parallel speedup — the four-SSD sharded storm at -workers 4 must
#     beat -workers 1 by >= 2.5x on events/sec (benchjson -speedup).
#     On hosts with fewer than 4 CPUs the speedup floor is skipped
#     with a printed notice: one core cannot express parallelism, and
#     the worker-invariance tests still pin correctness there.
# Opt-in pieces use BENCH_CHECK=1 so ordinary test runs never flake on
# cross-test allocation noise.
bench-check:
	BENCH_CHECK=1 $(GO) test -run 'AllocBudget' -count=1 -v .
	$(GO) test -run TestArbiterZeroAllocHotPath -count=1 -v ./internal/device
	$(GO) test -bench '$(GATE_BENCH)' -benchmem -benchtime 5x -count 3 -run '^$$' . \
		| $(GO) run ./cmd/benchjson -check BENCH_PR10.json \
			-speedup 'SimThroughputSharded/w4:SimThroughputSharded/w1:2.5'

# parallel-equivalence is the tentpole determinism gate under the race
# detector: 20-seed randomized per-shard stream equivalence at workers
# {2,4,8}, plus the T7/T8/T9 report and full-metrics invariance across
# worker counts. Any data race in the epoch engine or any cross-worker
# divergence fails this target.
parallel-equivalence:
	$(GO) test -race -count=1 -run 'ParallelEquivalence|EpochSequential|EpochLookahead' ./internal/sim
	$(GO) test -race -count=1 -run 'WorkerInvariant' ./internal/experiments

# profile writes host CPU and allocation profiles of the Fig. 6
# harness (the heaviest sweep) for `go tool pprof`. Separate runs:
# -memprofilerate alongside -cpuprofile skews the CPU numbers.
profile:
	$(GO) test -bench Fig6LatBW -benchtime 10x -run '^$$' -cpuprofile cpu.prof .
	$(GO) test -bench Fig6LatBW -benchtime 10x -run '^$$' -memprofile mem.prof .
	@echo "wrote cpu.prof mem.prof — inspect with: go tool pprof cpu.prof"

# fuzz runs each native fuzz target for FUZZTIME (go test -fuzz takes
# exactly one target per invocation, hence the loop). Targets are
# pkg:FuzzName pairs.
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; name=$${t##*:}; \
		echo "== fuzzing $$pkg $$name ($(FUZZTIME))"; \
		$(GO) test $$pkg -run $$name -fuzz "^$$name$$" -fuzztime $(FUZZTIME); \
	done

# trace-smoke runs one experiment with the trace plane armed and
# validates the emitted Chrome trace-event JSON with cmd/tracecheck:
# the file must parse, contain only X/M phases, and hold real spans.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
		$(GO) build -o $$tmp/bench ./cmd/bypassd-bench; \
		$(GO) build -o $$tmp/tracecheck ./cmd/tracecheck; \
		$$tmp/bench -run T6 -trace $$tmp/trace.json -metrics > $$tmp/out.txt; \
		grep -q '== metrics ==' $$tmp/out.txt; \
		$$tmp/tracecheck -min 100 $$tmp/trace.json

# repro-smoke round-trips the anomaly-repro tool on the T7 cell the
# arbiter gate pins: the same spec must replay byte-identically at
# -j1 and -j2, and the replayed row must be the wrr victim cell.
repro-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
		$(GO) build -o $$tmp/repro ./cmd/bypassd-repro; \
		spec='T7:hogs=8,victim=bypassd,arbiter=wrr@seed=1'; \
		$$tmp/repro -j 2 "$$spec" > $$tmp/a.txt 2>/dev/null; \
		$$tmp/repro -j 1 "$$spec" > $$tmp/b.txt 2>/dev/null; \
		cmp $$tmp/a.txt $$tmp/b.txt; \
		grep -q 'wrr' $$tmp/a.txt; \
		grep -q 'derived seed: 1' $$tmp/a.txt; \
		echo "repro-smoke ok"

# topology-smoke boots the multi-SSD plane end to end: one quick
# 2-device T9 cell through the CLI's -devices flag. It catches
# topology boot regressions (DevID assignment, per-device mounts,
# shard merge) that unit tests of the pieces can miss.
topology-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
		$(GO) build -o $$tmp/bench ./cmd/bypassd-bench; \
		$$tmp/bench -run T9 -devices 2 > $$tmp/out.txt; \
		grep -q 'weak scaling across SSDs' $$tmp/out.txt; \
		grep -Eq '^2 +4 ' $$tmp/out.txt; \
		echo "topology-smoke ok"

# frontend-smoke drives the service tier end to end through the CLI:
# the quick T10 cells must render byte-identically at -j1 and -j2, and
# a builtin fleet must run under the -frontend flag with its admission
# accounting visible. It catches wiring regressions (flag plumbing,
# fleet resolution, report shape) that the package tests can miss.
frontend-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
		$(GO) build -o $$tmp/bench ./cmd/bypassd-bench; \
		$$tmp/bench -run T10 -j 1 > $$tmp/a.txt; \
		$$tmp/bench -run T10 -j 2 > $$tmp/b.txt; \
		cmp $$tmp/a.txt $$tmp/b.txt; \
		grep -q 'service tier over' $$tmp/a.txt; \
		$$tmp/bench -frontend fleet-token-2.0x > $$tmp/fleet.txt; \
		grep -q 'token admission' $$tmp/fleet.txt; \
		grep -q 'fleet' $$tmp/fleet.txt; \
		echo "frontend-smoke ok"

# check is the default gate: build, vet, full tests (including the
# statistical tail-claim gates), the race detector over the whole
# tree, the allocation-budget gate, the parallel determinism gate,
# the repro-tool round trip, the 2-device topology smoke, and the
# service-tier smoke.
check: build vet test race bench-check parallel-equivalence repro-smoke topology-smoke frontend-smoke

clean:
	$(GO) clean ./...
